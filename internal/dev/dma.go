package dev

import "fmt"

// DMA register offsets.
const (
	DMARing   uint32 = 0x00 // read/write: descriptor ring base address
	DMACount  uint32 = 0x04 // read/write: number of descriptors in the ring
	DMACtrl   uint32 = 0x08 // write 1: kick the next descriptor
	DMAStatus uint32 = 0x0c // read: bit0 busy, bit1 completion IRQ pending
	DMAClear  uint32 = 0x10 // write 1: clear the completion IRQ
	DMAHead   uint32 = 0x14 // read: index of the next descriptor to process

	// DMASize is the mapped window size.
	DMASize uint32 = 0x1000
)

// DMAStatus bits.
const (
	DMAStatusBusy uint32 = 1 << 0
	DMAStatusIRQ  uint32 = 1 << 1
)

// A DMA descriptor is three words in guest RAM:
//
//	+0  destination address (word-aligned)
//	+4  sample count (words to write)
//	+8  flags — the device ORs in DMADescDone on completion
const (
	DMADescWords        = 3
	DMADescDone  uint32 = 1 << 0
)

// dmaMaxWords caps a single transfer so a fault-corrupted sample count
// degrades into a classifiable outcome instead of an unbounded host
// copy.
const dmaMaxWords = 1 << 16

// DMAStream is a descriptor-ring DMA engine fed by a stream of 16-bit
// sensor samples — the sensor-pipeline demonstrator's data source.
// Software builds a ring of descriptors in RAM, points DMARing/DMACount
// at it, and kicks a transfer with DMACtrl; the engine then copies the
// next samples to the descriptor's destination (one sign-extended word
// per sample), writes the done flag back into the descriptor, raises
// its completion line and advances the head index.
//
// Completion is deterministic in cycle time: a transfer kicked at cycle
// K with N words completes at K + StartCycles + N*CyclesPerWord. The
// copy itself happens host-side at the first Tick at or past that
// cycle; the architectural assert time is the completion cycle, which
// AssertCycle exposes to the latency co-sim. Guest memory is reached
// through the Mem callback so the platform can route the accesses over
// the bus (keeping dirty-page tracking and write notification sound).
type DMAStream struct {
	// Mem provides word access to guest memory; the platform wires it
	// to the system bus. Required before any transfer is kicked.
	Mem DMAMem

	// StartCycles and CyclesPerWord parametrize the completion-time
	// model (defaults via NewDMAStream; host-tunable for adversarial
	// latency sweeps).
	StartCycles   uint64
	CyclesPerWord uint64

	// Now returns the current cycle; the platform wires it to the
	// hart's cycle counter so kicks are anchored to guest time. The
	// emulators flush exact architectural state before any device
	// store, so the value read at kick time is engine-independent.
	Now func() uint64

	samples []int16
	pos     int

	ring  uint32
	count uint32
	head  uint32
	busy  bool
	irq   bool

	doneAt   uint64 // completion cycle of the in-flight transfer
	assertAt uint64 // cycle the completion IRQ was last asserted
	faulted  bool   // a transfer hit a bus error; engine wedged
}

// DMAMem is guest-memory word access for the DMA engine.
type DMAMem interface {
	ReadWord(addr uint32) (uint32, error)
	WriteWord(addr uint32, val uint32) error
}

// NewDMAStream creates a DMA engine preloaded with samples and the
// default timing model (a fixed setup cost plus a per-word cost).
func NewDMAStream(samples []int16) *DMAStream {
	return &DMAStream{samples: samples, StartCycles: 40, CyclesPerWord: 2}
}

// IRQ reports whether the completion interrupt line is asserted — the
// PLIC samples this as the level of PLICLineDMA.
func (d *DMAStream) IRQ() bool { return d.irq }

// AssertCycle returns the cycle the completion IRQ was last asserted.
func (d *DMAStream) AssertCycle() uint64 { return d.assertAt }

// Tick advances the engine to the given cycle: an in-flight transfer
// whose completion time has passed performs its copy and raises the
// completion IRQ. The platform calls this from the PLIC's line
// callback, so it runs at every interrupt poll point.
func (d *DMAStream) Tick(cycle uint64) {
	if !d.busy || cycle < d.doneAt {
		return
	}
	d.busy = false
	d.complete()
	d.irq = true
	d.assertAt = d.doneAt
}

// complete processes the descriptor at head: copy samples, write the
// done flag back, advance head. A bus error (descriptor or destination
// outside mapped memory — the fault campaigns provoke this) wedges the
// engine: the IRQ still fires so software observes the completion, but
// no further kicks are accepted.
func (d *DMAStream) complete() {
	desc := d.ring + d.head*4*DMADescWords
	dst, err := d.Mem.ReadWord(desc)
	if err != nil {
		d.faulted = true
		return
	}
	n, err := d.Mem.ReadWord(desc + 4)
	if err != nil {
		d.faulted = true
		return
	}
	if n > dmaMaxWords {
		n = dmaMaxWords
	}
	for i := uint32(0); i < n; i++ {
		var v uint32
		if d.pos < len(d.samples) {
			v = uint32(int32(d.samples[d.pos]))
			d.pos++
		}
		if err := d.Mem.WriteWord(dst+4*i, v); err != nil {
			d.faulted = true
			return
		}
	}
	flags, err := d.Mem.ReadWord(desc + 8)
	if err != nil {
		d.faulted = true
		return
	}
	if err := d.Mem.WriteWord(desc+8, flags|DMADescDone); err != nil {
		d.faulted = true
		return
	}
	if d.count > 0 {
		d.head = (d.head + 1) % d.count
	}
}

// kick starts the next transfer: completion is scheduled relative to
// the kick cycle. kick on a busy or wedged engine is ignored (software
// must wait for the completion IRQ).
func (d *DMAStream) kick() {
	if d.busy || d.faulted || d.count == 0 {
		return
	}
	n, err := d.Mem.ReadWord(d.ring + d.head*4*DMADescWords + 4)
	if err != nil {
		d.faulted = true
		return
	}
	if n > dmaMaxWords {
		n = dmaMaxWords
	}
	var now uint64
	if d.Now != nil {
		now = d.Now()
	}
	d.busy = true
	d.doneAt = now + d.StartCycles + uint64(n)*d.CyclesPerWord
}

// DMAState is a snapshot of the DMA engine's architectural state.
type DMAState struct {
	Ring, Count, Head uint32
	Busy, IRQ         bool
	DoneAt, AssertAt  uint64
	Pos               int
	Faulted           bool
}

// Snapshot captures the DMA state.
func (d *DMAStream) Snapshot() DMAState {
	return DMAState{
		Ring: d.ring, Count: d.count, Head: d.head,
		Busy: d.busy, IRQ: d.irq,
		DoneAt: d.doneAt, AssertAt: d.assertAt,
		Pos: d.pos, Faulted: d.faulted,
	}
}

// Restore replaces the DMA state with a snapshot.
func (d *DMAStream) Restore(s DMAState) {
	d.ring, d.count, d.head = s.Ring, s.Count, s.Head
	d.busy, d.irq = s.Busy, s.IRQ
	d.doneAt, d.assertAt = s.DoneAt, s.AssertAt
	d.pos, d.faulted = s.Pos, s.Faulted
}

// Load implements mem.Device.
func (d *DMAStream) Load(off uint32, size uint8) (uint32, error) {
	switch off {
	case DMARing:
		return d.ring, nil
	case DMACount:
		return d.count, nil
	case DMACtrl:
		return 0, nil
	case DMAStatus:
		var st uint32
		if d.busy {
			st |= DMAStatusBusy
		}
		if d.irq {
			st |= DMAStatusIRQ
		}
		return st, nil
	case DMAClear:
		return 0, nil
	case DMAHead:
		return d.head, nil
	}
	return 0, fmt.Errorf("dma: bad offset 0x%x", off)
}

// Store implements mem.Device.
func (d *DMAStream) Store(off uint32, size uint8, val uint32) error {
	switch off {
	case DMARing:
		d.ring = val
		return nil
	case DMACount:
		d.count = val
		return nil
	case DMACtrl:
		if val&1 != 0 {
			d.kick()
		}
		return nil
	case DMAClear:
		if val&1 != 0 {
			d.irq = false
		}
		return nil
	case DMAStatus, DMAHead:
		return nil // writes ignored
	}
	return fmt.Errorf("dma: bad offset 0x%x", off)
}
