package dev

import "fmt"

// SysCon register offsets.
const (
	SysConExit uint32 = 0x00 // write: halt simulation with exit code
)

// SysCon is the test-finisher device: bare-metal programs store an exit
// code to it to end the simulation, the role the HTIF tohost register
// plays for riscv-tests and the sifive_test device plays for QEMU.
type SysCon struct {
	// OnExit is invoked with the exit code when software writes the
	// exit register. The virtual platform wires this to the machine's
	// stop request.
	OnExit func(code uint32)
}

// Load implements mem.Device.
func (s *SysCon) Load(off uint32, size uint8) (uint32, error) {
	if off == SysConExit {
		return 0, nil
	}
	return 0, fmt.Errorf("syscon: bad offset 0x%x", off)
}

// Store implements mem.Device.
func (s *SysCon) Store(off uint32, size uint8, val uint32) error {
	if off == SysConExit {
		if s.OnExit != nil {
			s.OnExit(val)
		}
		return nil
	}
	return fmt.Errorf("syscon: bad offset 0x%x", off)
}

// Sensor register offsets.
const (
	SensorSample uint32 = 0x00 // read: next sample (signed 16-bit, sign-extended)
	SensorCount  uint32 = 0x04 // read: samples remaining
)

// Sensor is a synthetic edge-device data source: a queue of 16-bit
// samples the demonstrator applications stream in. Reading past the end
// returns zero, mimicking a quiet ADC.
type Sensor struct {
	samples []int16
	pos     int
}

// NewSensor creates a sensor preloaded with samples.
func NewSensor(samples []int16) *Sensor { return &Sensor{samples: samples} }

// Pos returns the read position (for snapshotting).
func (s *Sensor) Pos() int { return s.pos }

// SetPos rewinds or advances the read position.
func (s *Sensor) SetPos(p int) {
	if p < 0 {
		p = 0
	}
	if p > len(s.samples) {
		p = len(s.samples)
	}
	s.pos = p
}

// Load implements mem.Device.
func (s *Sensor) Load(off uint32, size uint8) (uint32, error) {
	switch off {
	case SensorSample:
		if s.pos >= len(s.samples) {
			return 0, nil
		}
		v := s.samples[s.pos]
		s.pos++
		return uint32(int32(v)), nil
	case SensorCount:
		return uint32(len(s.samples) - s.pos), nil
	}
	return 0, fmt.Errorf("sensor: bad offset 0x%x", off)
}

// Store implements mem.Device.
func (s *Sensor) Store(off uint32, size uint8, val uint32) error {
	return fmt.Errorf("sensor: read-only (offset 0x%x)", off)
}
