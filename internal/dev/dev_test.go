package dev

import (
	"bytes"
	"testing"
)

func TestUARTTransmit(t *testing.T) {
	var out bytes.Buffer
	u := NewUART(&out)
	for _, b := range []byte("hi\n") {
		if err := u.Store(UARTTxData, 1, uint32(b)); err != nil {
			t.Fatal(err)
		}
	}
	if out.String() != "hi\n" {
		t.Errorf("writer got %q", out.String())
	}
	if u.Output() != "hi\n" {
		t.Errorf("Output() = %q", u.Output())
	}
}

func TestUARTReceive(t *testing.T) {
	u := NewUART(nil)
	if st, _ := u.Load(UARTStatus, 4); st&2 != 0 {
		t.Error("rx-avail set on empty queue")
	}
	if v, _ := u.Load(UARTRxData, 4); v != 0xffffffff {
		t.Error("empty rx should read 0xffffffff")
	}
	u.Feed([]byte{0x41, 0x42})
	if st, _ := u.Load(UARTStatus, 4); st&2 == 0 {
		t.Error("rx-avail clear with data queued")
	}
	if v, _ := u.Load(UARTRxData, 4); v != 0x41 {
		t.Errorf("rx = 0x%x, want 0x41", v)
	}
	if v, _ := u.Load(UARTRxData, 4); v != 0x42 {
		t.Errorf("rx = 0x%x, want 0x42", v)
	}
	if v, _ := u.Load(UARTRxData, 4); v != 0xffffffff {
		t.Error("drained rx should read 0xffffffff")
	}
}

func TestUARTBadOffset(t *testing.T) {
	u := NewUART(nil)
	if _, err := u.Load(0x40, 4); err == nil {
		t.Error("bad load offset should error")
	}
	if err := u.Store(0x40, 4, 0); err == nil {
		t.Error("bad store offset should error")
	}
}

func TestCLINTTimer(t *testing.T) {
	c := NewCLINT()
	if c.TimerPending() {
		t.Error("timer pending at reset (mtimecmp should be all-ones)")
	}
	// Program mtimecmp = 100.
	c.Store(CLINTMtimecmp, 4, 100)
	c.Store(CLINTMtimecmpH, 4, 0)
	if c.TimerPending() {
		t.Error("timer pending before mtime reaches mtimecmp")
	}
	c.Advance(99)
	if c.TimerPending() {
		t.Error("pending at mtime=99 < 100")
	}
	c.Advance(1)
	if !c.TimerPending() {
		t.Error("not pending at mtime=100")
	}
	if v, _ := c.Load(CLINTMtime, 4); v != 100 {
		t.Errorf("mtime = %d", v)
	}
	if ev, ok := c.NextTimerEvent(); ok {
		t.Errorf("NextTimerEvent while pending = %d, true", ev)
	}
}

func TestCLINTNextTimerEvent(t *testing.T) {
	c := NewCLINT()
	if _, ok := c.NextTimerEvent(); ok {
		t.Error("unprogrammed timer should have no next event")
	}
	c.Store(CLINTMtimecmp, 4, 500)
	c.Store(CLINTMtimecmpH, 4, 0)
	ev, ok := c.NextTimerEvent()
	if !ok || ev != 500 {
		t.Errorf("NextTimerEvent = %d, %v; want 500, true", ev, ok)
	}
}

func TestCLINTSoftware(t *testing.T) {
	c := NewCLINT()
	if c.SoftwarePending() {
		t.Error("msip set at reset")
	}
	c.Store(CLINTMsip, 4, 1)
	if !c.SoftwarePending() {
		t.Error("msip not set after store")
	}
	if v, _ := c.Load(CLINTMsip, 4); v != 1 {
		t.Errorf("msip reads %d", v)
	}
	c.Store(CLINTMsip, 4, 0)
	if c.SoftwarePending() {
		t.Error("msip not cleared")
	}
}

func TestCLINT64BitRegisters(t *testing.T) {
	c := NewCLINT()
	c.Store(CLINTMtime, 4, 0xdeadbeef)
	c.Store(CLINTMtimeH, 4, 0x12345678)
	if c.Time() != 0x12345678deadbeef {
		t.Errorf("mtime = 0x%x", c.Time())
	}
	lo, _ := c.Load(CLINTMtime, 4)
	hi, _ := c.Load(CLINTMtimeH, 4)
	if lo != 0xdeadbeef || hi != 0x12345678 {
		t.Errorf("mtime halves = 0x%x 0x%x", lo, hi)
	}
	if _, err := c.Load(0x9999, 4); err == nil {
		t.Error("bad offset should error")
	}
}

func TestSysConExit(t *testing.T) {
	var got *uint32
	s := &SysCon{OnExit: func(code uint32) { got = &code }}
	if err := s.Store(SysConExit, 4, 42); err != nil {
		t.Fatal(err)
	}
	if got == nil || *got != 42 {
		t.Errorf("OnExit got %v", got)
	}
	if _, err := s.Load(SysConExit, 4); err != nil {
		t.Error("exit register should be readable (as zero)")
	}
	if err := s.Store(0x10, 4, 0); err == nil {
		t.Error("bad offset should error")
	}
	// Nil OnExit must not crash.
	(&SysCon{}).Store(SysConExit, 4, 1)
}

func TestSensorStreaming(t *testing.T) {
	s := NewSensor([]int16{10, -20, 30})
	if n, _ := s.Load(SensorCount, 4); n != 3 {
		t.Errorf("count = %d", n)
	}
	if v, _ := s.Load(SensorSample, 4); v != 10 {
		t.Errorf("sample = %d", v)
	}
	if v, _ := s.Load(SensorSample, 4); int32(v) != -20 {
		t.Errorf("sample = %d, want -20 sign-extended", int32(v))
	}
	if n, _ := s.Load(SensorCount, 4); n != 1 {
		t.Errorf("count = %d", n)
	}
	s.Load(SensorSample, 4)
	if v, _ := s.Load(SensorSample, 4); v != 0 {
		t.Errorf("drained sensor reads %d, want 0", v)
	}
	if err := s.Store(SensorSample, 4, 1); err == nil {
		t.Error("sensor must be read-only")
	}
}
