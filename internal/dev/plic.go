package dev

import "fmt"

// PLIC register offsets (single-context, flat-priority subset of the
// platform-level interrupt controller: one pending word, one enable
// word, and a claim register that acknowledges the lowest pending line).
const (
	PLICPending uint32 = 0x00 // read: asserted lines (bit N = line N)
	PLICEnable  uint32 = 0x04 // read/write: enabled lines
	PLICClaim   uint32 = 0x08 // read: lowest pending&enabled line, 0 if none

	// PLICSize is the mapped window size.
	PLICSize uint32 = 0x1000
)

// The platform's interrupt line assignment. Line 0 is reserved ("no
// interrupt", the claim register's idle value), as in the real PLIC.
const (
	PLICLineDMA  = 1 // DMA transfer-complete (level, from the DMA engine)
	PLICLineUART = 2 // UART receive-available (level, rx queue non-empty)
	PLICLineTest = 3 // host-scheduled test trigger (edge, see TriggerAt)

	plicLines = 4 // lines 1..3 implemented
)

// PLIC is a platform-level interrupt controller reduced to the essence
// the single-hart edge platform needs: level-sensitive source lines, an
// enable mask, and a claim register. It funnels all device lines into
// the hart's single machine-external-interrupt (MEIP) bit; the handler
// reads PLICClaim to learn which line fired and re-reads it until it
// returns 0 (the claim-drain idiom the demonstrators use).
//
// Levels are sampled live from device callbacks on every register read
// and every Pending query, so an ISR that clears its device's interrupt
// condition immediately stops seeing the line in PLICClaim — real
// level-triggered semantics. Device state itself only changes at
// interrupt poll points (the platform ticks devices from the machine's
// poll) and at guest MMIO stores, both of which the engines replicate
// exactly, keeping the sampled levels engine-independent.
//
// Line 3 is an edge-triggered test line the host arms with TriggerAt:
// it lets co-simulation harnesses assert an interrupt at an exact,
// adversarially chosen cycle, uniformly across workloads. It latches
// pending at the first Tick at or past the scheduled cycle and clears
// when claimed.
type PLIC struct {
	enable  uint32
	sources [plicLines]func() bool // live level callbacks, may be nil

	trigArmed   bool
	trigAt      uint64
	trigPending bool
}

// NewPLIC creates a PLIC with all lines disabled and no sources wired.
func NewPLIC() *PLIC { return &PLIC{} }

// SetSource wires a live level callback for a line.
func (p *PLIC) SetSource(line int, fn func() bool) {
	if line > 0 && line < plicLines {
		p.sources[line] = fn
	}
}

// TriggerAt arms the edge-triggered test line (PLICLineTest) to assert
// at the given cycle. The line latches pending at the first Tick with
// cycle >= at and stays pending until claimed; the assert time is the
// scheduled cycle, regardless of when the CPU first polls.
func (p *PLIC) TriggerAt(at uint64) {
	p.trigArmed = true
	p.trigAt = at
	p.trigPending = false
}

// TriggerCycle returns the cycle the test line was (or will be)
// asserted at, and ok=false if it was never armed.
func (p *PLIC) TriggerCycle() (uint64, bool) {
	if !p.trigArmed && !p.trigPending {
		return 0, false
	}
	return p.trigAt, true
}

// Tick latches the test line at the given cycle. The platform calls it
// from every interrupt poll point.
func (p *PLIC) Tick(cycle uint64) {
	if p.trigArmed && cycle >= p.trigAt {
		p.trigArmed = false
		p.trigPending = true
	}
}

// sample reads the current line levels.
func (p *PLIC) sample() uint32 {
	var lv uint32
	for i := 1; i < plicLines; i++ {
		if fn := p.sources[i]; fn != nil && fn() {
			lv |= 1 << i
		}
	}
	if p.trigPending {
		lv |= 1 << PLICLineTest
	}
	return lv
}

// Pending reports whether any enabled line is asserted — the value of
// the hart's MEIP bit.
func (p *PLIC) Pending() bool { return p.sample()&p.enable != 0 }

// PLICState is a snapshot of the PLIC's architectural state. Line
// levels are not state: they are re-derived from the devices, whose
// own snapshots the platform restores alongside.
type PLICState struct {
	Enable      uint32
	TrigArmed   bool
	TrigAt      uint64
	TrigPending bool
}

// Snapshot captures the PLIC state.
func (p *PLIC) Snapshot() PLICState {
	return PLICState{
		Enable:      p.enable,
		TrigArmed:   p.trigArmed,
		TrigAt:      p.trigAt,
		TrigPending: p.trigPending,
	}
}

// Restore replaces the PLIC state with a snapshot.
func (p *PLIC) Restore(s PLICState) {
	p.enable = s.Enable
	p.trigArmed = s.TrigArmed
	p.trigAt = s.TrigAt
	p.trigPending = s.TrigPending
}

// Load implements mem.Device.
func (p *PLIC) Load(off uint32, size uint8) (uint32, error) {
	switch off {
	case PLICPending:
		return p.sample(), nil
	case PLICEnable:
		return p.enable, nil
	case PLICClaim:
		pend := p.sample() & p.enable
		for i := 1; i < plicLines; i++ {
			if pend&(1<<i) != 0 {
				if i == PLICLineTest {
					// Edge line: the claim is the acknowledgement.
					p.trigPending = false
				}
				return uint32(i), nil
			}
		}
		return 0, nil
	}
	return 0, fmt.Errorf("plic: bad offset 0x%x", off)
}

// Store implements mem.Device.
func (p *PLIC) Store(off uint32, size uint8, val uint32) error {
	switch off {
	case PLICEnable:
		p.enable = val & (1<<plicLines - 1) &^ 1
		return nil
	case PLICPending, PLICClaim:
		return nil // writes ignored
	}
	return fmt.Errorf("plic: bad offset 0x%x", off)
}
