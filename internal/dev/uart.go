// Package dev implements the MMIO peripherals of the virtual platform:
// a console UART, a CLINT-style core-local interruptor (timer + software
// interrupts), a test-finisher "syscon" used by bare-metal programs to
// halt the simulation with an exit code, and a synthetic sensor used by
// the edge demonstrators.
package dev

import (
	"bytes"
	"fmt"
	"io"
)

// UART register offsets (one 32-bit register per slot).
const (
	UARTTxData uint32 = 0x00 // write: transmit low byte
	UARTRxData uint32 = 0x04 // read: next input byte, or 0xffffffff if empty
	UARTStatus uint32 = 0x08 // read: bit0 tx-ready (always), bit1 rx-avail
)

// UART is a minimal memory-mapped console. Transmitted bytes go to an
// io.Writer (and are also retained for inspection); received bytes come
// from a caller-provided queue.
type UART struct {
	out io.Writer
	tx  bytes.Buffer
	rx  []byte
}

// NewUART creates a UART writing transmitted bytes to out. A nil out
// retains output for Output() only.
func NewUART(out io.Writer) *UART { return &UART{out: out} }

// Output returns everything transmitted so far.
func (u *UART) Output() string { return u.tx.String() }

// Feed appends bytes to the receive queue.
func (u *UART) Feed(data []byte) { u.rx = append(u.rx, data...) }

// RxAvail reports whether the receive queue is non-empty — the level of
// the UART's PLIC interrupt line.
func (u *UART) RxAvail() bool { return len(u.rx) > 0 }

// UARTState is a snapshot of the UART's architectural state.
type UARTState struct {
	TX string
	RX []byte
}

// Snapshot captures the UART state.
func (u *UART) Snapshot() UARTState {
	rx := make([]byte, len(u.rx))
	copy(rx, u.rx)
	return UARTState{TX: u.tx.String(), RX: rx}
}

// Restore replaces the UART state with a snapshot. The external writer
// is not rewound; restored output is visible through Output only.
func (u *UART) Restore(s UARTState) {
	u.tx.Reset()
	u.tx.WriteString(s.TX)
	u.rx = append(u.rx[:0], s.RX...)
}

// Load implements mem.Device.
func (u *UART) Load(off uint32, size uint8) (uint32, error) {
	switch off {
	case UARTTxData:
		return 0, nil
	case UARTRxData:
		if len(u.rx) == 0 {
			return 0xffffffff, nil
		}
		b := u.rx[0]
		u.rx = u.rx[1:]
		return uint32(b), nil
	case UARTStatus:
		st := uint32(1) // tx always ready
		if len(u.rx) > 0 {
			st |= 2
		}
		return st, nil
	}
	return 0, fmt.Errorf("uart: bad offset 0x%x", off)
}

// Store implements mem.Device.
func (u *UART) Store(off uint32, size uint8, val uint32) error {
	switch off {
	case UARTTxData:
		b := byte(val)
		u.tx.WriteByte(b)
		if u.out != nil {
			if _, err := u.out.Write([]byte{b}); err != nil {
				return err
			}
		}
		return nil
	case UARTRxData, UARTStatus:
		return nil // writes ignored
	}
	return fmt.Errorf("uart: bad offset 0x%x", off)
}
