package dev

import "testing"

// fakeMem is word-addressed guest memory for DMA tests.
type fakeMem struct {
	words map[uint32]uint32
	fail  map[uint32]bool
}

func newFakeMem() *fakeMem {
	return &fakeMem{words: map[uint32]uint32{}, fail: map[uint32]bool{}}
}

func (m *fakeMem) ReadWord(addr uint32) (uint32, error) {
	if m.fail[addr] {
		return 0, errBus
	}
	return m.words[addr], nil
}

func (m *fakeMem) WriteWord(addr uint32, val uint32) error {
	if m.fail[addr] {
		return errBus
	}
	m.words[addr] = val
	return nil
}

var errBus = errString("bus error")

type errString string

func (e errString) Error() string { return string(e) }

func dmaWithRing(t *testing.T, samples []int16, dst, n uint32) (*DMAStream, *fakeMem) {
	t.Helper()
	mem := newFakeMem()
	const ring = 0x8000_1000
	mem.words[ring] = dst
	mem.words[ring+4] = n
	d := NewDMAStream(samples)
	d.Mem = mem
	d.Store(DMARing, 4, ring)
	d.Store(DMACount, 4, 1)
	return d, mem
}

func TestDMATransfer(t *testing.T) {
	d, mem := dmaWithRing(t, []int16{5, -6, 7}, 0x8000_2000, 3)
	now := uint64(100)
	d.Now = func() uint64 { return now }

	d.Store(DMACtrl, 4, 1)
	if st, _ := d.Load(DMAStatus, 4); st != DMAStatusBusy {
		t.Fatalf("status after kick = %#x, want busy", st)
	}
	// doneAt = 100 + 40 + 3*2 = 146.
	d.Tick(145)
	if st, _ := d.Load(DMAStatus, 4); st != DMAStatusBusy {
		t.Fatal("completed before its cycle-time model says so")
	}
	d.Tick(146)
	st, _ := d.Load(DMAStatus, 4)
	if st != DMAStatusIRQ {
		t.Fatalf("status after completion = %#x, want irq, not busy", st)
	}
	if got := d.AssertCycle(); got != 146 {
		t.Errorf("AssertCycle = %d, want 146 (the modelled completion)", got)
	}
	if mem.words[0x8000_2000] != 5 || int32(mem.words[0x8000_2004]) != -6 ||
		mem.words[0x8000_2008] != 7 {
		t.Errorf("dst words = %v", []uint32{
			mem.words[0x8000_2000], mem.words[0x8000_2004], mem.words[0x8000_2008]})
	}
	if mem.words[0x8000_1008]&DMADescDone == 0 {
		t.Error("done flag not written back to descriptor")
	}
	if h, _ := d.Load(DMAHead, 4); h != 0 {
		t.Errorf("head = %d, want 0 (single-descriptor ring wraps)", h)
	}
	d.Store(DMAClear, 4, 1)
	if d.IRQ() {
		t.Error("irq still asserted after clear")
	}
	// Drained stream pads with zeros.
	mem.words[0x8000_2000] = 0xffff_ffff
	d.Store(DMACtrl, 4, 1)
	d.Tick(1 << 20)
	if mem.words[0x8000_2000] != 0 {
		t.Error("drained stream should pad destination with zeros")
	}
}

func TestDMAFaultWedges(t *testing.T) {
	d, mem := dmaWithRing(t, []int16{1, 2}, 0x8000_2000, 2)
	d.Now = func() uint64 { return 0 }
	mem.fail[0x8000_2004] = true // second destination word unmapped
	d.Store(DMACtrl, 4, 1)
	d.Tick(1 << 20)
	if !d.IRQ() {
		t.Error("completion IRQ should still fire on a faulted transfer")
	}
	d.Store(DMAClear, 4, 1)
	d.Store(DMACtrl, 4, 1) // wedged: further kicks ignored
	if st, _ := d.Load(DMAStatus, 4); st&DMAStatusBusy != 0 {
		t.Error("wedged engine accepted a kick")
	}
}

func TestDMASnapshotRoundTrip(t *testing.T) {
	d, _ := dmaWithRing(t, []int16{1, 2, 3}, 0x8000_2000, 1)
	d.Now = func() uint64 { return 7 }
	d.Store(DMACtrl, 4, 1)
	s := d.Snapshot()
	d.Tick(1 << 20)
	post := d.Snapshot()
	if post == s {
		t.Fatal("state did not change across completion")
	}
	d.Restore(s)
	if d.Snapshot() != s {
		t.Error("restore did not round-trip")
	}
	d.Tick(1 << 20)
	if d.Snapshot() != post {
		t.Error("replay after restore diverged")
	}
}

func TestPLICClaimPriority(t *testing.T) {
	p := NewPLIC()
	l1, l2 := false, false
	p.SetSource(PLICLineDMA, func() bool { return l1 })
	p.SetSource(PLICLineUART, func() bool { return l2 })
	p.Store(PLICEnable, 4, 1<<PLICLineDMA|1<<PLICLineUART)

	if p.Pending() {
		t.Error("pending with no lines asserted")
	}
	if c, _ := p.Load(PLICClaim, 4); c != 0 {
		t.Errorf("claim on idle = %d", c)
	}
	l1, l2 = true, true
	if !p.Pending() {
		t.Error("not pending with both lines asserted")
	}
	if c, _ := p.Load(PLICClaim, 4); c != PLICLineDMA {
		t.Errorf("claim = %d, want lowest line %d", c, PLICLineDMA)
	}
	// Level semantics: the line vanishes from claim the moment its
	// device is serviced, with no tick in between.
	l1 = false
	if c, _ := p.Load(PLICClaim, 4); c != PLICLineUART {
		t.Errorf("claim = %d, want %d", c, PLICLineUART)
	}
}

func TestPLICEnableGates(t *testing.T) {
	p := NewPLIC()
	p.SetSource(PLICLineDMA, func() bool { return true })
	if p.Pending() {
		t.Error("disabled line must not assert MEIP")
	}
	if pend, _ := p.Load(PLICPending, 4); pend&(1<<PLICLineDMA) == 0 {
		t.Error("raw pending should show the line regardless of enable")
	}
	p.Store(PLICEnable, 4, 1<<PLICLineDMA)
	if !p.Pending() {
		t.Error("enabled asserted line must assert MEIP")
	}
}

func TestPLICTestTrigger(t *testing.T) {
	p := NewPLIC()
	p.Store(PLICEnable, 4, 1<<PLICLineTest)
	p.TriggerAt(500)
	p.Tick(499)
	if p.Pending() {
		t.Error("trigger fired early")
	}
	p.Tick(503) // CPU polls a few cycles after the scheduled assert
	if !p.Pending() {
		t.Error("trigger did not latch")
	}
	if at, ok := p.TriggerCycle(); !ok || at != 500 {
		t.Errorf("TriggerCycle = %d, %v; want scheduled 500", at, ok)
	}
	if c, _ := p.Load(PLICClaim, 4); c != PLICLineTest {
		t.Errorf("claim = %d", c)
	}
	p.Tick(504)
	if p.Pending() {
		t.Error("edge line still pending after claim")
	}
}

func TestPLICSnapshotRoundTrip(t *testing.T) {
	p := NewPLIC()
	p.Store(PLICEnable, 4, 1<<PLICLineTest)
	p.TriggerAt(100)
	s := p.Snapshot()
	p.Tick(200)
	post := p.Snapshot()
	p.Restore(s)
	if p.Snapshot() != s {
		t.Error("restore did not round-trip")
	}
	p.Tick(200)
	if p.Snapshot() != post {
		t.Error("replay after restore diverged")
	}
}
