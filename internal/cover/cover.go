// Package cover implements the register and instruction coverage metric
// for RISC-V ISA modules: it measures whether each instruction type of
// the configured ISA executes and whether each GPR, FPR and CSR is
// accessed, the qualification metric the ecosystem applies to test
// suites. The collector runs as an emulator plugin and collections can
// be merged across suites.
package cover

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/plugin"
)

// Coverage accumulates execution counts per instruction type and access
// counts per register.
type Coverage struct {
	ISA isa.ExtSet

	Ops  map[isa.Op]uint64
	GPR  [isa.NumRegs]uint64 // reads + writes
	FPR  [isa.NumRegs]uint64
	CSRs map[isa.CSR]uint64
}

// New creates a collector for the given ISA configuration.
func New(set isa.ExtSet) *Coverage {
	return &Coverage{
		ISA:  set,
		Ops:  make(map[isa.Op]uint64),
		CSRs: make(map[isa.CSR]uint64),
	}
}

// Name implements plugin.Plugin.
func (c *Coverage) Name() string { return "coverage" }

// OnInsnExec implements plugin.InsnExecer.
func (c *Coverage) OnInsnExec(pc uint32, in decode.Inst) {
	if !in.Valid() {
		return
	}
	c.Ops[in.Op]++
	c.recordRegs(in)
	if in.Op.Class() == isa.ClassCSR {
		c.CSRs[in.CSR]++
	}
}

// recordRegs attributes the instruction's register operands to the GPR
// and FPR access counters.
func (c *Coverage) recordRegs(in decode.Inst) {
	p, ok := isa.PatternFor(in.Op)
	fd, f1, f2 := isa.UsesFPRegs(in.Op)
	mark := func(r isa.Reg, fp bool) {
		if fp {
			c.FPR[r]++
		} else {
			c.GPR[r]++
		}
	}
	if !ok {
		// Compressed instruction: operands were expanded by the decoder.
		c.markCompressed(in)
		return
	}
	switch p.Fmt {
	case isa.FmtNone:
	case isa.FmtR:
		mark(in.Rd, fd)
		mark(in.Rs1, f1)
		mark(in.Rs2, f2)
	case isa.FmtR4:
		mark(in.Rd, true)
		mark(in.Rs1, true)
		mark(in.Rs2, true)
		mark(in.Rs3, true)
	case isa.FmtI, isa.FmtIShift:
		mark(in.Rd, fd)
		mark(in.Rs1, false)
	case isa.FmtS:
		mark(in.Rs1, false)
		mark(in.Rs2, f2)
	case isa.FmtB:
		mark(in.Rs1, false)
		mark(in.Rs2, false)
	case isa.FmtU, isa.FmtJ:
		mark(in.Rd, false)
	case isa.FmtCSR:
		mark(in.Rd, false)
		mark(in.Rs1, false)
	case isa.FmtCSRI:
		mark(in.Rd, false)
	case isa.FmtRUnary:
		mark(in.Rd, fd)
		mark(in.Rs1, f1)
	}
}

func (c *Coverage) markCompressed(in decode.Inst) {
	switch in.Op {
	case isa.OpCNOP, isa.OpCEBREAK:
	case isa.OpCJ, isa.OpCJAL:
		c.GPR[in.Rd]++
	case isa.OpCJR, isa.OpCJALR:
		c.GPR[in.Rd]++
		c.GPR[in.Rs1]++
	case isa.OpCBEQZ, isa.OpCBNEZ:
		c.GPR[in.Rs1]++
	case isa.OpCSW, isa.OpCSWSP:
		c.GPR[in.Rs1]++
		c.GPR[in.Rs2]++
	case isa.OpCMV:
		c.GPR[in.Rd]++
		c.GPR[in.Rs2]++
	case isa.OpCADD, isa.OpCSUB, isa.OpCXOR, isa.OpCOR, isa.OpCAND:
		c.GPR[in.Rd]++
		c.GPR[in.Rs2]++
	default: // c.addi-style rd/rs1 forms and loads
		c.GPR[in.Rd]++
		c.GPR[in.Rs1]++
	}
}

// Merge folds other into c (suite union). The ISA configurations must
// match.
func (c *Coverage) Merge(other *Coverage) error {
	if other.ISA != c.ISA {
		return fmt.Errorf("cover: merging different ISA configs %v / %v", c.ISA, other.ISA)
	}
	for op, n := range other.Ops {
		c.Ops[op] += n
	}
	for i := range c.GPR {
		c.GPR[i] += other.GPR[i]
		c.FPR[i] += other.FPR[i]
	}
	for a, n := range other.CSRs {
		c.CSRs[a] += n
	}
	return nil
}

// GroupReport is the coverage of one extension group (I, M, Zicsr,
// Xbmi/Zbb, Xbmi/Zbs, ...), using the same grouping the subset analyzer
// reports (isa.Op.ExtGroup).
type GroupReport struct {
	Group          string
	Covered, Total int
	MissingOps     []string
}

// Report is the coverage summary for one collection.
type Report struct {
	ISA string

	OpsCovered, OpsTotal int
	GPRCovered           int
	FPRCovered, FPRTotal int // FPRTotal is 0 when F is not configured
	CSRCovered, CSRTotal int

	MissingOps []string
	MissingGPR []string

	// Groups breaks the instruction-type coverage down per extension
	// group, in the configured ISA's op order.
	Groups []GroupReport
}

// Pct formats a covered/total ratio as a percentage.
func Pct(covered, total int) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(covered) / float64(total)
}

// Report summarizes the collection against its ISA configuration.
func (c *Coverage) Report() Report {
	r := Report{ISA: c.ISA.String()}
	groupIdx := map[string]int{}
	for _, op := range isa.OpsIn(c.ISA) {
		r.OpsTotal++
		grp := op.ExtGroup()
		gi, ok := groupIdx[grp]
		if !ok {
			gi = len(r.Groups)
			groupIdx[grp] = gi
			r.Groups = append(r.Groups, GroupReport{Group: grp})
		}
		r.Groups[gi].Total++
		if c.Ops[op] > 0 {
			r.OpsCovered++
			r.Groups[gi].Covered++
		} else {
			r.MissingOps = append(r.MissingOps, op.String())
			r.Groups[gi].MissingOps = append(r.Groups[gi].MissingOps, op.String())
		}
	}
	for i := 0; i < isa.NumRegs; i++ {
		if c.GPR[i] > 0 {
			r.GPRCovered++
		} else {
			r.MissingGPR = append(r.MissingGPR, isa.Reg(i).String())
		}
	}
	if c.ISA.Has(isa.ExtF) {
		r.FPRTotal = isa.NumRegs
		for i := 0; i < isa.NumRegs; i++ {
			if c.FPR[i] > 0 {
				r.FPRCovered++
			}
		}
	}
	r.CSRTotal = len(isa.CSRs())
	for _, a := range isa.CSRs() {
		if c.CSRs[a] > 0 {
			r.CSRCovered++
		}
	}
	sort.Strings(r.MissingOps)
	return r
}

// String renders the table row format the coverage tool prints.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ISA %s: insn types %d/%d (%.1f%%), GPR %d/32 (%.1f%%)",
		r.ISA, r.OpsCovered, r.OpsTotal, Pct(r.OpsCovered, r.OpsTotal),
		r.GPRCovered, Pct(r.GPRCovered, 32))
	if r.FPRTotal > 0 {
		fmt.Fprintf(&sb, ", FPR %d/%d (%.1f%%)", r.FPRCovered, r.FPRTotal,
			Pct(r.FPRCovered, r.FPRTotal))
	}
	fmt.Fprintf(&sb, ", CSR %d/%d", r.CSRCovered, r.CSRTotal)
	return sb.String()
}

var _ plugin.InsnExecer = (*Coverage)(nil)
