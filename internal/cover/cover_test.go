package cover_test

import (
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/decode"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/vp"
)

// runWithCoverage executes source with a coverage collector.
func runWithCoverage(t *testing.T, src string, set isa.ExtSet) *cover.Coverage {
	t.Helper()
	c := cover.New(set)
	p, err := vp.New(vp.Config{ISA: set})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Machine.Hooks.Register(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + src); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(100_000)
	if stop.Reason != emu.StopEbreak && stop.Reason != emu.StopExit {
		t.Fatalf("run ended with %v", stop)
	}
	return c
}

func TestOpCounting(t *testing.T) {
	c := runWithCoverage(t, `
		add a0, a1, a2
		add a3, a4, a5
		sub s0, s1, s2
		ebreak
	`, isa.RV32I)
	if c.Ops[isa.OpADD] != 2 || c.Ops[isa.OpSUB] != 1 {
		t.Errorf("op counts: add=%d sub=%d", c.Ops[isa.OpADD], c.Ops[isa.OpSUB])
	}
	if c.Ops[isa.OpEBREAK] != 1 {
		t.Errorf("ebreak counted %d times", c.Ops[isa.OpEBREAK])
	}
}

func TestGPRAttribution(t *testing.T) {
	c := runWithCoverage(t, `
		add s2, s3, s4
		ebreak
	`, isa.RV32I)
	for _, r := range []isa.Reg{isa.S2, isa.S3, isa.S4} {
		if c.GPR[r] == 0 {
			t.Errorf("register %v not counted", r)
		}
	}
	if c.GPR[isa.A7] != 0 {
		t.Error("untouched register counted")
	}
}

func TestFPRAttribution(t *testing.T) {
	c := runWithCoverage(t, `
		la a0, buf
		li t0, 2
		fcvt.s.w ft3, t0
		fadd.s fs1, ft3, ft3
		fsw fs1, 0(a0)
		flw fa7, 0(a0)
		ebreak
buf:	.word 0
	`, isa.RV32IMF)
	if c.FPR[3] == 0 { // ft3
		t.Error("ft3 not counted")
	}
	if c.FPR[9] == 0 { // fs1
		t.Error("fs1 not counted")
	}
	if c.FPR[17] == 0 { // fa7
		t.Error("fa7 (flw destination) not counted")
	}
	// The integer base register of fsw/flw is a GPR access.
	if c.GPR[isa.A0] == 0 {
		t.Error("fp load/store base register not counted as GPR")
	}
}

func TestCSRAttribution(t *testing.T) {
	c := runWithCoverage(t, `
		csrw mscratch, a0
		csrr a1, cycle
		ebreak
	`, isa.RV32IM)
	if c.CSRs[isa.CSRMscratch] == 0 || c.CSRs[isa.CSRCycle] == 0 {
		t.Errorf("CSR counts: %v", c.CSRs)
	}
}

func TestReportPercentages(t *testing.T) {
	c := runWithCoverage(t, `
		add a0, a1, a2
		ebreak
	`, isa.RV32I)
	r := c.Report()
	if r.OpsTotal == 0 || r.OpsCovered < 2 { // add + ebreak + li-expansions
		t.Errorf("report: %+v", r)
	}
	if r.GPRCovered == 0 || r.GPRCovered > 32 {
		t.Errorf("GPR covered = %d", r.GPRCovered)
	}
	if len(r.MissingOps) != r.OpsTotal-r.OpsCovered {
		t.Error("missing ops inconsistent")
	}
	if !strings.Contains(r.String(), "insn types") {
		t.Errorf("report string: %q", r.String())
	}
	if cover.Pct(1, 2) != 50 || cover.Pct(0, 0) != 100 {
		t.Error("Pct wrong")
	}
}

func TestMergeUnion(t *testing.T) {
	a := runWithCoverage(t, "add a0, a1, a2\nebreak\n", isa.RV32I)
	b := runWithCoverage(t, "sub s0, s1, s2\nebreak\n", isa.RV32I)
	before := a.Report().OpsCovered
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	after := a.Report().OpsCovered
	if after != before+1 { // sub is new
		t.Errorf("merge: %d -> %d ops", before, after)
	}
	if a.GPR[isa.S0] == 0 {
		t.Error("merged register counts lost")
	}
	other := cover.New(isa.RV32IMF)
	if err := a.Merge(other); err == nil {
		t.Error("merging different ISA configs should fail")
	}
}

func TestFPRTotalOnlyWithF(t *testing.T) {
	c := cover.New(isa.RV32IM)
	if c.Report().FPRTotal != 0 {
		t.Error("FPR universe should be empty without F")
	}
	cf := cover.New(isa.RV32IMF)
	if cf.Report().FPRTotal != 32 {
		t.Error("FPR universe should be 32 with F")
	}
}

func TestInvalidInstIgnored(t *testing.T) {
	c := cover.New(isa.RV32I)
	c.OnInsnExec(0, decode.Inst{})
	if len(c.Ops) != 0 {
		t.Error("invalid instruction must not be counted")
	}
}

func TestISAScaling(t *testing.T) {
	// The same program yields a higher percentage on a smaller ISA
	// configuration — the coverage metric scales with the module set.
	src := "add a0, a1, a2\nmul a3, a4, a5\nebreak\n"
	small := runWithCoverage(t, src, isa.RV32IM).Report()
	big := runWithCoverage(t, src, isa.RV32Full).Report()
	if small.OpsTotal >= big.OpsTotal {
		t.Errorf("op universe should grow: %d vs %d", small.OpsTotal, big.OpsTotal)
	}
	if cover.Pct(small.OpsCovered, small.OpsTotal) <= cover.Pct(big.OpsCovered, big.OpsTotal) {
		t.Error("percentage should shrink with a bigger universe")
	}
}
