package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestX0HardwiredZero(t *testing.T) {
	var h Hart
	h.SetReg(0, 0xdeadbeef)
	if h.Reg(0) != 0 {
		t.Error("x0 must read zero")
	}
	h.SetReg(1, 42)
	if h.Reg(1) != 42 {
		t.Error("x1 write lost")
	}
}

func TestResetState(t *testing.T) {
	var h Hart
	h.SetReg(5, 99)
	h.Cycle = 1000
	h.Reset(0x8000_0000)
	if h.PC != 0x8000_0000 || h.Reg(5) != 0 || h.Cycle != 0 {
		t.Errorf("reset incomplete: %+v", h)
	}
	if h.Mstatus&isa.MstatusMPP != isa.MstatusMPP {
		t.Error("MPP should reset to machine mode")
	}
}

func TestCSRReadWriteBasics(t *testing.T) {
	var h Hart
	h.Reset(0)
	if err := h.WriteCSR(isa.CSRMscratch, 0x12345678); err != nil {
		t.Fatal(err)
	}
	v, err := h.ReadCSR(isa.CSRMscratch)
	if err != nil || v != 0x12345678 {
		t.Errorf("mscratch = 0x%x, %v", v, err)
	}
}

func TestCSRReadOnlyRejectsWrites(t *testing.T) {
	var h Hart
	for _, c := range []isa.CSR{isa.CSRMhartid, isa.CSRMvendorid, isa.CSRCycle} {
		if err := h.WriteCSR(c, 1); err == nil {
			t.Errorf("write to read-only %v should fail", c)
		}
	}
}

func TestCSRUnimplemented(t *testing.T) {
	var h Hart
	if _, err := h.ReadCSR(isa.CSR(0x123)); err == nil {
		t.Error("read of unimplemented CSR should fail")
	}
	if err := h.WriteCSR(isa.CSR(0x123), 0); err == nil {
		t.Error("write of unimplemented CSR should fail")
	}
	var ce *CSRError
	_, err := h.ReadCSR(isa.CSR(0x123))
	if e, ok := err.(*CSRError); ok {
		ce = e
	}
	if ce == nil || ce.Error() == "" {
		t.Error("CSRError type/message missing")
	}
}

func TestCountersSplitAcrossWords(t *testing.T) {
	var h Hart
	h.Cycle = 0x1_0000_0002
	h.Instret = 0x2_0000_0003
	lo, _ := h.ReadCSR(isa.CSRMcycle)
	hi, _ := h.ReadCSR(isa.CSRMcycleH)
	if lo != 2 || hi != 1 {
		t.Errorf("mcycle halves: %d, %d", lo, hi)
	}
	lo, _ = h.ReadCSR(isa.CSRInstret)
	hi, _ = h.ReadCSR(isa.CSRInstretH)
	if lo != 3 || hi != 2 {
		t.Errorf("instret halves: %d, %d", lo, hi)
	}
	// Writes to the machine counter halves must stick.
	h.WriteCSR(isa.CSRMcycle, 100)
	if uint32(h.Cycle) != 100 || h.Cycle>>32 != 1 {
		t.Errorf("mcycle write: 0x%x", h.Cycle)
	}
}

func TestFcsrComposition(t *testing.T) {
	var h Hart
	h.WriteCSR(isa.CSRFcsr, 0xff)
	fl, _ := h.ReadCSR(isa.CSRFflags)
	rm, _ := h.ReadCSR(isa.CSRFrm)
	if fl != 0x1f || rm != 0x7 {
		t.Errorf("fflags=0x%x frm=0x%x", fl, rm)
	}
	h.WriteCSR(isa.CSRFflags, 0)
	v, _ := h.ReadCSR(isa.CSRFcsr)
	if v != 0x7<<5 {
		t.Errorf("fcsr = 0x%x", v)
	}
}

func TestTrapAndMRet(t *testing.T) {
	var h Hart
	h.Reset(0x100)
	h.WriteCSR(isa.CSRMtvec, 0x2000)
	h.Mstatus |= isa.MstatusMIE
	h.Trap(isa.ExcIllegalInst, 0xbad, 0x104)

	if h.PC != 0x2000 {
		t.Errorf("trap PC = 0x%x", h.PC)
	}
	if h.Mepc != 0x104 || h.Mcause != isa.ExcIllegalInst || h.Mtval != 0xbad {
		t.Errorf("trap CSRs: mepc=0x%x mcause=%d mtval=0x%x", h.Mepc, h.Mcause, h.Mtval)
	}
	if h.Mstatus&isa.MstatusMIE != 0 {
		t.Error("MIE not cleared by trap")
	}
	if h.Mstatus&isa.MstatusMPIE == 0 {
		t.Error("MPIE not saved")
	}

	h.MRet()
	if h.PC != 0x104 {
		t.Errorf("mret PC = 0x%x", h.PC)
	}
	if h.Mstatus&isa.MstatusMIE == 0 {
		t.Error("MIE not restored by mret")
	}
}

func TestVectoredInterrupts(t *testing.T) {
	var h Hart
	h.WriteCSR(isa.CSRMtvec, 0x2000|1) // vectored mode
	h.Trap(uint32(isa.IntMachineTimer)|1<<31, 0, 0x100)
	if h.PC != 0x2000+4*isa.IntMachineTimer {
		t.Errorf("vectored interrupt PC = 0x%x", h.PC)
	}
	// Exceptions always go to base even in vectored mode.
	h.WriteCSR(isa.CSRMtvec, 0x3000|1)
	h.Trap(isa.ExcIllegalInst, 0, 0x100)
	if h.PC != 0x3000 {
		t.Errorf("vectored exception PC = 0x%x", h.PC)
	}
}

func TestPendingInterruptPriority(t *testing.T) {
	var h Hart
	h.Mstatus = isa.MstatusMIE
	h.Mie = 1<<isa.IntMachineSoftware | 1<<isa.IntMachineTimer | 1<<isa.IntMachineExternal
	h.Mip = h.Mie
	if c, ok := h.PendingInterrupt(); !ok || c != isa.IntMachineExternal {
		t.Errorf("priority: got %d, %v; want external", c, ok)
	}
	h.Mip &^= 1 << isa.IntMachineExternal
	if c, _ := h.PendingInterrupt(); c != isa.IntMachineSoftware {
		t.Errorf("priority: got %d, want software", c)
	}
	h.Mip = 1 << isa.IntMachineTimer
	if c, _ := h.PendingInterrupt(); c != isa.IntMachineTimer {
		t.Errorf("got %d, want timer", c)
	}
}

func TestInterruptGating(t *testing.T) {
	var h Hart
	h.Mie = 1 << isa.IntMachineTimer
	h.Mip = 1 << isa.IntMachineTimer
	// MIE clear: no delivery.
	if _, ok := h.PendingInterrupt(); ok {
		t.Error("interrupt delivered with MIE clear")
	}
	h.Mstatus = isa.MstatusMIE
	h.Mie = 0
	if _, ok := h.PendingInterrupt(); ok {
		t.Error("interrupt delivered with mie bit clear")
	}
}

func TestMstatusWARL(t *testing.T) {
	var h Hart
	h.WriteCSR(isa.CSRMstatus, 0xffffffff)
	v, _ := h.ReadCSR(isa.CSRMstatus)
	if v&^uint32(mstatusMask) != 0 {
		t.Errorf("mstatus kept illegal bits: 0x%x", v)
	}
}

func TestMepcAlignment(t *testing.T) {
	var h Hart
	h.WriteCSR(isa.CSRMepc, 0x1001)
	v, _ := h.ReadCSR(isa.CSRMepc)
	if v != 0x1000 {
		t.Errorf("mepc = 0x%x, low bit must be masked", v)
	}
}

func TestSnapshotRestore(t *testing.T) {
	var h Hart
	h.Reset(0x100)
	h.SetReg(10, 1234)
	h.Cycle = 77
	snap := h.Snapshot()
	h.SetReg(10, 0)
	h.PC = 0x9999
	h.Restore(snap)
	if h.Reg(10) != 1234 || h.PC != 0x100 || h.Cycle != 77 {
		t.Errorf("restore incomplete: %+v", h)
	}
}

// Property: every implemented CSR that accepts a write reads back a value
// that is a subset-masked version of what was written (WARL), and a
// second identical write is idempotent.
func TestQuickCSRWARLIdempotent(t *testing.T) {
	f := func(v uint32) bool {
		for _, c := range isa.CSRs() {
			var h Hart
			if err := h.WriteCSR(c, v); err != nil {
				continue // read-only
			}
			r1, err := h.ReadCSR(c)
			if err != nil {
				return false
			}
			if err := h.WriteCSR(c, r1); err != nil {
				return false
			}
			r2, _ := h.ReadCSR(c)
			if r1 != r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
