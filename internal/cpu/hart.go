// Package cpu holds the architectural state of one RV32 hart — integer
// and floating-point register files, program counter, and the M-mode CSR
// file with its trap machinery — independent of how instructions are
// executed. The emulator mutates this state; the fault injector flips
// bits in it; snapshots copy it.
package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// Hart is the architectural state of one hardware thread.
type Hart struct {
	X  [32]uint32 // integer registers; X[0] must read as zero
	F  [32]uint32 // single-precision FP registers (raw bits)
	PC uint32

	// M-mode CSRs.
	Mstatus  uint32
	Mie      uint32
	Mip      uint32
	Mtvec    uint32
	Mscratch uint32
	Mepc     uint32
	Mcause   uint32
	Mtval    uint32

	// FP accrued exception flags and rounding mode (fcsr).
	Fflags uint32 // low 5 bits
	Frm    uint32 // low 3 bits

	// Counters, advanced by the emulator.
	Cycle   uint64
	Instret uint64
}

// Reset puts the hart in its architectural reset state with the given
// boot PC.
func (h *Hart) Reset(pc uint32) {
	*h = Hart{PC: pc}
	h.Mstatus = uint32(isa.MstatusMPP) // MPP = machine
}

// Reg reads an integer register, with x0 hardwired to zero.
func (h *Hart) Reg(r isa.Reg) uint32 {
	if r == 0 {
		return 0
	}
	return h.X[r]
}

// SetReg writes an integer register; writes to x0 are discarded.
func (h *Hart) SetReg(r isa.Reg, v uint32) {
	if r != 0 {
		h.X[r] = v
	}
}

// CSRError reports an illegal CSR access; the emulator turns it into an
// illegal-instruction trap.
type CSRError struct {
	CSR   isa.CSR
	Write bool
}

func (e *CSRError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("cpu: illegal CSR %s of %v", op, e.CSR)
}

// ReadCSR returns the value of a CSR, or a CSRError for unimplemented
// addresses.
func (h *Hart) ReadCSR(c isa.CSR) (uint32, error) {
	switch c {
	case isa.CSRFflags:
		return h.Fflags & 0x1f, nil
	case isa.CSRFrm:
		return h.Frm & 7, nil
	case isa.CSRFcsr:
		return h.Frm&7<<5 | h.Fflags&0x1f, nil
	case isa.CSRCycle, isa.CSRMcycle:
		return uint32(h.Cycle), nil
	case isa.CSRCycleH, isa.CSRMcycleH:
		return uint32(h.Cycle >> 32), nil
	case isa.CSRTime:
		return uint32(h.Cycle), nil // time ticks with cycle on this platform
	case isa.CSRTimeH:
		return uint32(h.Cycle >> 32), nil
	case isa.CSRInstret, isa.CSRMinstret:
		return uint32(h.Instret), nil
	case isa.CSRInstretH, isa.CSRMinstretH:
		return uint32(h.Instret >> 32), nil
	case isa.CSRMvendorid, isa.CSRMimpid:
		return 0, nil
	case isa.CSRMarchid:
		return 0x53344544, nil // "S4ED"
	case isa.CSRMhartid:
		return 0, nil
	case isa.CSRMstatus:
		return h.Mstatus, nil
	case isa.CSRMisa:
		// RV32IMFC + X: MXL=1 (32-bit), bits for I, M, F, C, X.
		return 1<<30 | 1<<8 | 1<<12 | 1<<5 | 1<<2 | 1<<23, nil
	case isa.CSRMedeleg, isa.CSRMideleg, isa.CSRMcounteren:
		return 0, nil
	case isa.CSRMie:
		return h.Mie, nil
	case isa.CSRMtvec:
		return h.Mtvec, nil
	case isa.CSRMscratch:
		return h.Mscratch, nil
	case isa.CSRMepc:
		return h.Mepc &^ 1, nil
	case isa.CSRMcause:
		return h.Mcause, nil
	case isa.CSRMtval:
		return h.Mtval, nil
	case isa.CSRMip:
		return h.Mip, nil
	}
	return 0, &CSRError{CSR: c}
}

// mstatus bits this implementation stores: MIE, MPIE, MPP (WARL: always
// machine).
const mstatusMask = isa.MstatusMIE | isa.MstatusMPIE | isa.MstatusMPP

// WriteCSR writes a CSR with WARL masking, or returns a CSRError for
// read-only or unimplemented addresses.
func (h *Hart) WriteCSR(c isa.CSR, v uint32) error {
	if c.ReadOnly() {
		return &CSRError{CSR: c, Write: true}
	}
	switch c {
	case isa.CSRFflags:
		h.Fflags = v & 0x1f
	case isa.CSRFrm:
		h.Frm = v & 7
	case isa.CSRFcsr:
		h.Fflags = v & 0x1f
		h.Frm = v >> 5 & 7
	case isa.CSRMstatus:
		h.Mstatus = v&mstatusMask | uint32(isa.MstatusMPP) // MPP pinned to M
	case isa.CSRMisa, isa.CSRMedeleg, isa.CSRMideleg, isa.CSRMcounteren:
		// WARL read-only-zero behaviour: writes ignored.
	case isa.CSRMie:
		h.Mie = v & (1<<isa.IntMachineSoftware | 1<<isa.IntMachineTimer | 1<<isa.IntMachineExternal)
	case isa.CSRMtvec:
		h.Mtvec = v &^ 2 // direct or vectored; reserved mode bit cleared
	case isa.CSRMscratch:
		h.Mscratch = v
	case isa.CSRMepc:
		h.Mepc = v &^ 1
	case isa.CSRMcause:
		h.Mcause = v
	case isa.CSRMtval:
		h.Mtval = v
	case isa.CSRMip:
		// Only the software-pending bit is directly writable here; timer
		// and external pending bits track their sources.
		h.Mip = h.Mip&^uint32(1<<isa.IntMachineSoftware) | v&(1<<isa.IntMachineSoftware)
	case isa.CSRMcycle:
		h.Cycle = h.Cycle&^uint64(0xffffffff) | uint64(v)
	case isa.CSRMcycleH:
		h.Cycle = h.Cycle&0xffffffff | uint64(v)<<32
	case isa.CSRMinstret:
		h.Instret = h.Instret&^uint64(0xffffffff) | uint64(v)
	case isa.CSRMinstretH:
		h.Instret = h.Instret&0xffffffff | uint64(v)<<32
	default:
		return &CSRError{CSR: c, Write: true}
	}
	return nil
}

// Trap enters the M-mode trap handler for the given cause. The interrupt
// flag must already be folded into cause's top bit. pc is the address of
// the trapping instruction (or the next PC for interrupts).
func (h *Hart) Trap(cause, tval, pc uint32) {
	h.Mepc = pc
	h.Mcause = cause
	h.Mtval = tval
	// Save and clear MIE.
	mie := h.Mstatus & isa.MstatusMIE
	h.Mstatus &^= uint32(isa.MstatusMIE | isa.MstatusMPIE)
	if mie != 0 {
		h.Mstatus |= isa.MstatusMPIE
	}
	base := h.Mtvec &^ 3
	if h.Mtvec&1 != 0 && cause>>31 != 0 {
		// Vectored mode: interrupts jump to base + 4*cause.
		h.PC = base + 4*(cause&0x7fffffff)
	} else {
		h.PC = base
	}
}

// MRet returns from an M-mode trap: restores MIE from MPIE and jumps to
// mepc.
func (h *Hart) MRet() {
	h.Mstatus &^= uint32(isa.MstatusMIE)
	if h.Mstatus&isa.MstatusMPIE != 0 {
		h.Mstatus |= isa.MstatusMIE
	}
	h.Mstatus |= isa.MstatusMPIE
	h.PC = h.Mepc
}

// PendingInterrupt returns the highest-priority enabled pending interrupt
// cause, and ok=false if none is deliverable (priority: external,
// software, timer — the architectural MEI > MSI > MTI order).
func (h *Hart) PendingInterrupt() (uint32, bool) {
	if h.Mstatus&isa.MstatusMIE == 0 {
		return 0, false
	}
	pend := h.Mip & h.Mie
	switch {
	case pend&(1<<isa.IntMachineExternal) != 0:
		return isa.IntMachineExternal, true
	case pend&(1<<isa.IntMachineSoftware) != 0:
		return isa.IntMachineSoftware, true
	case pend&(1<<isa.IntMachineTimer) != 0:
		return isa.IntMachineTimer, true
	}
	return 0, false
}

// Snapshot returns a copy of the full architectural state.
func (h *Hart) Snapshot() Hart { return *h }

// Restore replaces the hart state with a snapshot.
func (h *Hart) Restore(s Hart) { *h = s }
