// Command s4e-serve runs the long-running analysis job service: an HTTP
// server accepting emulation runs, fault-injection campaigns, WCET
// analyses, QTA co-simulations, guest-binary lints and ISA-subset
// analyses as JSON jobs on a bounded worker pool. Jobs over the same
// binary share one golden run and one compiled translation pool, fault
// campaigns can be sharded across the pool (`fault.shards`), and with
// -state the service journals every submission and terminal transition
// to an append-only JSONL store — a restarted server replays the
// journal, restores finished jobs (status and result), and re-queues
// jobs that were queued or running at the crash. Submissions carrying
// an Idempotency-Key are deduplicated against retained jobs, across
// restarts included.
//
// Usage:
//
//	s4e-serve [-addr :8080] [-workers N] [-queue 16] [-timeout 60s]
//	          [-budget 10000000] [-retries 2] [-state DIR]
//	          [-retain 4096] [-retain-ttl 0]
//
// The API:
//
//	POST   /v1/jobs             submit a job (JSON body; 202/400/429/503,
//	                            200 on an Idempotency-Key replay)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result (202 until terminal)
//	GET    /v1/jobs/{id}/events lifecycle + campaign progress (SSE)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /metrics             Prometheus metrics
//	GET    /healthz             liveness
//
// SIGINT/SIGTERM drain the server: the listener stops accepting, queued
// and running jobs finish (bounded by -drain), then the process exits
// 0. Exit status: 0 on clean shutdown, 1 on runtime failure, 2 on usage
// error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel job executors")
	queue := flag.Int("queue", 16, "bounded queue depth (full queue sheds with 429)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job execution timeout")
	budget := flag.Uint64("budget", 10_000_000, "default per-job instruction budget")
	retries := flag.Int("retries", 2, "retries for transiently failing jobs")
	state := flag.String("state", "",
		"state directory for the persistent job journal (empty = in-memory only)")
	retain := flag.Int("retain", 4096, "finished jobs kept in memory before eviction")
	retainTTL := flag.Duration("retain-ttl", 0,
		"additionally evict finished jobs older than this (0 = no TTL)")
	drain := flag.Duration("drain", 30*time.Second,
		"shutdown grace period before running jobs are cancelled")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: s4e-serve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var st *store.Store
	if *state != "" {
		var err error
		st, err = store.Open(*state)
		if err != nil {
			fmt.Fprintln(os.Stderr, "s4e-serve:", err)
			os.Exit(1)
		}
		if n := len(st.Replay()); n > 0 || st.Torn() > 0 {
			fmt.Fprintf(os.Stderr, "s4e-serve: journal %s: %d records (%d torn)\n",
				st.Path(), n, st.Torn())
		}
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		DefaultBudget:  *budget,
		Retries:        *retries,
		MaxTerminal:    *retain,
		TerminalTTL:    *retainTTL,
		Store:          st,
	})
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s4e-serve:", err)
		os.Exit(1)
	}
	// The resolved address (not the flag) so -addr :0 is scriptable.
	fmt.Fprintf(os.Stderr, "s4e-serve: listening on %s (%d workers, queue %d)\n",
		ln.Addr(), *workers, *queue)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		// Listener failed before any signal (bad address, port in use).
		fmt.Fprintln(os.Stderr, "s4e-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "s4e-serve: %v: draining (grace %v)\n", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "s4e-serve: http shutdown:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "s4e-serve: drain incomplete:", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "s4e-serve: journal close:", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "s4e-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "s4e-serve: drained, bye")
}
