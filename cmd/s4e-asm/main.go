// Command s4e-asm assembles RISC-V assembly into an ELF32 executable or
// a flat binary image.
//
// Usage:
//
//	s4e-asm [-org addr] [-flat] [-o out] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/elf"
	"repro/internal/vp"
)

func main() {
	org := flag.Uint64("org", uint64(vp.RAMBase), "load address")
	flat := flag.Bool("flat", false, "emit a flat binary instead of ELF")
	out := flag.String("o", "", "output file (default: input with .elf/.bin)")
	prelude := flag.Bool("prelude", true, "prepend the platform constant definitions")
	compress := flag.Bool("compress", false, "apply RVC relaxation (compress eligible instructions to 16-bit forms)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-asm [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	text := string(src)
	if *prelude {
		text = vp.Prelude + text
	}
	prog, err := asm.AssembleAtOpt(text, uint32(*org), asm.Options{Compress: *compress})
	if err != nil {
		fatal(err)
	}
	name := *out
	if name == "" {
		base := strings.TrimSuffix(in, ".s")
		if *flat {
			name = base + ".bin"
		} else {
			name = base + ".elf"
		}
	}
	var data []byte
	if *flat {
		data = prog.Bytes
	} else {
		data = elf.Write(&elf.Image{
			Entry:    prog.Entry,
			Segments: []elf.Segment{{Addr: prog.Org, Data: prog.Bytes}},
			Symbols:  prog.Symbols,
		})
	}
	if err := os.WriteFile(name, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes at 0x%08x, entry 0x%08x, %d symbols\n",
		name, len(prog.Bytes), prog.Org, prog.Entry, len(prog.Symbols))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-asm:", err)
	os.Exit(1)
}
