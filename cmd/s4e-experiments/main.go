// Command s4e-experiments regenerates the evaluation tables (E1..E9 in
// EXPERIMENTS.md).
//
// Usage:
//
//	s4e-experiments             # run everything
//	s4e-experiments -exp e2,e7  # selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	which := flag.String("exp", "", "comma-separated experiment ids (e1..e9); empty = all")
	flag.Parse()
	var ids []string
	if *which != "" {
		ids = strings.Split(*which, ",")
	}
	out, err := exp.All(ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s4e-experiments:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
