// Command s4e-cov runs the instruction/register coverage analysis: over
// the built-in suite families, or over explicit assembly programs.
//
// Usage:
//
//	s4e-cov [-isa rv32imf] -suites              # three-family study + union
//	s4e-cov [-isa rv32imf] prog1.s prog2.s ...  # coverage of given programs
//
// -ext adds a per-extension-group breakdown (I, M, Zicsr, Xbmi/Zbb,
// Xbmi/Zbs, ...) using the same grouping tables as the subset analyzer.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cover"
	"repro/internal/exp"
	"repro/internal/isa"
	"repro/internal/suites"
)

func main() {
	isaName := flag.String("isa", "rv32imf", "ISA configuration the coverage is scored against")
	suitesFlag := flag.Bool("suites", false, "run the built-in architectural/unit/torture study")
	missing := flag.Bool("missing", false, "list uncovered instruction types")
	byExt := flag.Bool("ext", false, "break coverage down per extension group")
	flag.Parse()

	set, err := parseISA(*isaName)
	if err != nil {
		fatal(err)
	}

	if *suitesFlag {
		_, table, err := exp.E4Coverage(set)
		if err != nil {
			fatal(err)
		}
		fmt.Print(table)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: s4e-cov [-isa cfg] -suites | prog.s ...")
		os.Exit(2)
	}
	var programs []suites.Program
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		programs = append(programs, suites.Program{Name: name, Source: string(src), Budget: 10_000_000})
	}
	c, err := suites.Run(suites.Suite{Name: "cli", Programs: programs}, set)
	if err != nil {
		fatal(err)
	}
	r := c.Report()
	fmt.Println(r)
	if *byExt {
		for _, g := range r.Groups {
			fmt.Printf("  %-10s %d/%d (%.1f%%)", g.Group, g.Covered, g.Total,
				cover.Pct(g.Covered, g.Total))
			if *missing && len(g.MissingOps) > 0 {
				fmt.Printf("  missing: %v", g.MissingOps)
			}
			fmt.Println()
		}
	}
	if *missing {
		fmt.Println("missing instruction types:", r.MissingOps)
		fmt.Println("untouched GPRs:", r.MissingGPR)
	}
}

func parseISA(s string) (isa.ExtSet, error) {
	switch s {
	case "rv32i":
		return isa.RV32I, nil
	case "rv32im":
		return isa.RV32IM, nil
	case "rv32imf":
		return isa.RV32IMF, nil
	case "rv32imb":
		return isa.RV32IMB, nil
	case "rv32imc":
		return isa.RV32IMC, nil
	case "full":
		return isa.RV32Full, nil
	}
	return 0, fmt.Errorf("unknown ISA %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-cov:", err)
	os.Exit(1)
}
