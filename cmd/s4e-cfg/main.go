// Command s4e-cfg reconstructs the control-flow graph of an assembly
// program and writes it in Graphviz DOT format. With -annotate, each
// block label additionally carries the static-analysis facts: loop
// heads with their depth and (user or inferred) bound, and lint
// findings.
//
// Usage:
//
//	s4e-cfg [-annotate] [-bounds loop=32] [-o prog.dot] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/flow"
	"repro/internal/vp"
)

func parseBounds(s string) (map[string]int, error) {
	out := map[string]int{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad bound %q (want label=N)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad bound count %q", kv[1])
		}
		out[strings.TrimSpace(kv[0])] = n
	}
	return out, nil
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	annotate := flag.Bool("annotate", false, "add loop, bound and lint notes to each block")
	boundsFlag := flag.String("bounds", "", "loop bounds for -annotate: label=N,label=N,...")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-cfg [-annotate] [-o out.dot] prog.s")
		os.Exit(2)
	}
	bounds, err := parseBounds(*boundsFlag)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleAt(vp.Prelude+string(src), vp.RAMBase)
	if err != nil {
		fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		fatal(err)
	}
	var dot string
	if *annotate {
		dot = flow.AnnotatedDOT(prog, g, bounds)
	} else {
		symByAddr := map[uint32]string{}
		for name, addr := range prog.Symbols {
			symByAddr[addr] = name
		}
		dot = g.DOT(symByAddr)
	}
	if *out == "" {
		fmt.Print(dot)
		return
	}
	if err := os.WriteFile(*out, []byte(dot), 0o644); err != nil {
		fatal(err)
	}
	loops, err := g.NaturalLoops(g.Entry)
	if err == nil {
		var heads []string
		for _, l := range loops {
			heads = append(heads, fmt.Sprintf("0x%08x(depth %d)", l.Head, l.Depth))
		}
		fmt.Printf("%s: %d blocks, %d loops %s\n",
			*out, len(g.Blocks), len(loops), strings.Join(heads, " "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-cfg:", err)
	os.Exit(1)
}
