// Command s4e-cfg reconstructs the control-flow graph of an assembly
// program and writes it in Graphviz DOT format.
//
// Usage:
//
//	s4e-cfg [-o prog.dot] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/vp"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-cfg [-o out.dot] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleAt(vp.Prelude+string(src), vp.RAMBase)
	if err != nil {
		fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		fatal(err)
	}
	symByAddr := map[uint32]string{}
	for name, addr := range prog.Symbols {
		symByAddr[addr] = name
	}
	dot := g.DOT(symByAddr)
	if *out == "" {
		fmt.Print(dot)
		return
	}
	if err := os.WriteFile(*out, []byte(dot), 0o644); err != nil {
		fatal(err)
	}
	loops, err := g.NaturalLoops(g.Entry)
	if err == nil {
		var heads []string
		for _, l := range loops {
			heads = append(heads, fmt.Sprintf("0x%08x(depth %d)", l.Head, l.Depth))
		}
		fmt.Printf("%s: %d blocks, %d loops %s\n",
			*out, len(g.Blocks), len(loops), strings.Join(heads, " "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-cfg:", err)
	os.Exit(1)
}
