// Command s4e-qta performs the timing-annotated co-simulation: it loads
// an assembly program together with its WCET-annotated CFG (produced by
// s4e-wcet) and reports the observed worst-case time against the static
// bound and the dynamic cycle count.
//
// Usage:
//
//	s4e-qta [-profile edge-small] [-annot prog.qta.json] [-blockprofile] prog.s
//
// Exit status: 0 on success, 1 on runtime failure, 2 on usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/qta"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/wcet"
)

func main() {
	profName := flag.String("profile", "edge-small", "timing profile (must match the annotation)")
	annot := flag.String("annot", "", "annotated CFG (default: input + .qta.json)")
	budget := flag.Uint64("budget", 100_000_000, "instruction budget")
	blockProfile := flag.Bool("blockprofile", false, "print the per-block visit profile")
	metricsPath := flag.String("metrics", "", "write analysis timing and engine metrics to `file` (.json for JSON, - for stdout, else Prometheus text)")
	tracePath := flag.String("trace", "", "write structured trace events (JSONL) to `file`")
	progress := flag.Bool("progress", false, "print a periodic progress line to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-qta [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prof, ok := timing.Profiles()[*profName]
	if !ok {
		fmt.Fprintf(os.Stderr, "s4e-qta: unknown profile %q\n", *profName)
		os.Exit(2)
	}

	var tr *obs.Trace
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		tr, closeTrace, err = obs.NewFileTrace(*tracePath, obs.DefaultRing)
		if err != nil {
			fatal(err)
		}
	}

	name := *annot
	if name == "" {
		name = strings.TrimSuffix(flag.Arg(0), ".s") + ".qta.json"
	}
	decodeStart := time.Now()
	annotData, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	an, err := wcet.Decode(annotData)
	if err != nil {
		fatal(err)
	}
	decodeSecs := time.Since(decodeStart).Seconds()
	if an.Profile != prof.Name() {
		fmt.Fprintf(os.Stderr, "s4e-qta: warning: annotation was computed for profile %s\n", an.Profile)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := vp.New(vp.Config{Profile: prof, ConsoleOut: os.Stdout})
	if err != nil {
		fatal(err)
	}
	q := qta.New(an)
	if err := p.Machine.Hooks.Register(q); err != nil {
		fatal(err)
	}
	prog, err := p.LoadSource(vp.Prelude + string(src))
	if err != nil {
		fatal(err)
	}
	if findings, err := flow.LintProgram(prog, nil); err == nil {
		for _, f := range findings {
			if f.Severity >= lint.Possible {
				fmt.Fprintf(os.Stderr, "s4e-qta: lint: %s\n", f)
			}
		}
	}
	tr.Emit("qta-start", "prog", flag.Arg(0), "annot", name, "blocks", len(an.Blocks))
	runStart := time.Now()
	stop := run(p, *budget, *progress)
	runSecs := time.Since(runStart).Seconds()
	if stop.Reason != emu.StopExit && stop.Reason != emu.StopEbreak {
		fatal(fmt.Errorf("program ended with %v", stop))
	}
	res := q.NewResult(flag.Arg(0), p.Machine.Hart.Cycle, p.Machine.Hart.Instret)
	tr.Emit("qta-end", "static_wcet", res.StaticWCET, "qta_time", res.QTATime,
		"dynamic", res.Dynamic, "sound", res.Sound(), "run_seconds", runSecs)
	fmt.Println(res)
	fmt.Printf("blocks executed: %d/%d, unannotated transitions: %d, sound: %v\n",
		res.BlocksSeen, res.BlocksTotal, res.Missing, res.Sound())
	if *blockProfile {
		fmt.Print(q.Profile())
	}

	if *metricsPath != "" {
		reg := obs.NewRegistry()
		reg.Gauge("s4e_qta_decode_seconds", "annotation decode time").Set(decodeSecs)
		reg.Gauge("s4e_qta_run_seconds", "co-simulation run time").Set(runSecs)
		reg.Gauge("s4e_qta_static_wcet_cycles", "static WCET bound").Set(float64(res.StaticWCET))
		reg.Gauge("s4e_qta_observed_cycles", "QTA-observed worst-case time").Set(float64(res.QTATime))
		reg.Gauge("s4e_qta_dynamic_cycles", "emulator dynamic cycle count").Set(float64(res.Dynamic))
		reg.Counter("s4e_qta_missing_transitions_total", "transitions without an annotated edge").Add(res.Missing)
		p.RecordStats(reg)
		if err := reg.WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			fatal(err)
		}
	}
}

// run executes the program, optionally in budget chunks with a live
// progress line between them.
func run(p *vp.Platform, budget uint64, progress bool) emu.StopInfo {
	if !progress {
		return p.Run(budget)
	}
	const chunk = 50_000_000
	start := time.Now()
	for {
		step := uint64(chunk)
		if budget > 0 {
			rem := budget - p.Machine.Hart.Instret
			if rem == 0 {
				return emu.StopInfo{Reason: emu.StopBudget, PC: p.Machine.Hart.PC}
			}
			if rem < step {
				step = rem
			}
		}
		stop := p.Run(step)
		done := p.Machine.Hart.Instret
		if stop.Reason != emu.StopBudget || (budget > 0 && done >= budget) {
			return stop
		}
		secs := time.Since(start).Seconds()
		mips := 0.0
		if secs > 0 {
			mips = float64(done) / 1e6 / secs
		}
		fmt.Fprintf(os.Stderr, "s4e-qta: %d insts (%.0f MIPS)\n", done, mips)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-qta:", err)
	os.Exit(1)
}
