// Command s4e-qta performs the timing-annotated co-simulation: it loads
// an assembly program together with its WCET-annotated CFG (produced by
// s4e-wcet) and reports the observed worst-case time against the static
// bound and the dynamic cycle count.
//
// Usage:
//
//	s4e-qta [-profile edge-small] [-annot prog.qta.json] [-blockprofile] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/lint"
	"repro/internal/qta"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/wcet"
)

func main() {
	profName := flag.String("profile", "edge-small", "timing profile (must match the annotation)")
	annot := flag.String("annot", "", "annotated CFG (default: input + .qta.json)")
	budget := flag.Uint64("budget", 100_000_000, "instruction budget")
	blockProfile := flag.Bool("blockprofile", false, "print the per-block visit profile")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-qta [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prof, ok := timing.Profiles()[*profName]
	if !ok {
		fatal(fmt.Errorf("unknown profile %q", *profName))
	}
	name := *annot
	if name == "" {
		name = strings.TrimSuffix(flag.Arg(0), ".s") + ".qta.json"
	}
	annotData, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	an, err := wcet.Decode(annotData)
	if err != nil {
		fatal(err)
	}
	if an.Profile != prof.Name() {
		fmt.Fprintf(os.Stderr, "s4e-qta: warning: annotation was computed for profile %s\n", an.Profile)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := vp.New(vp.Config{Profile: prof, ConsoleOut: os.Stdout})
	if err != nil {
		fatal(err)
	}
	q := qta.New(an)
	if err := p.Machine.Hooks.Register(q); err != nil {
		fatal(err)
	}
	prog, err := p.LoadSource(vp.Prelude + string(src))
	if err != nil {
		fatal(err)
	}
	if findings, err := flow.LintProgram(prog, nil); err == nil {
		for _, f := range findings {
			if f.Severity >= lint.Possible {
				fmt.Fprintf(os.Stderr, "s4e-qta: lint: %s\n", f)
			}
		}
	}
	stop := p.Run(*budget)
	if stop.Reason != emu.StopExit && stop.Reason != emu.StopEbreak {
		fatal(fmt.Errorf("program ended with %v", stop))
	}
	res := q.NewResult(flag.Arg(0), p.Machine.Hart.Cycle, p.Machine.Hart.Instret)
	fmt.Println(res)
	fmt.Printf("blocks executed: %d/%d, unannotated transitions: %d, sound: %v\n",
		res.BlocksSeen, res.BlocksTotal, res.Missing, res.Sound())
	if *blockProfile {
		fmt.Print(q.Profile())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-qta:", err)
	os.Exit(1)
}
