// Command s4e-qta performs the timing-annotated co-simulation: it loads
// an assembly program together with its WCET-annotated CFG (produced by
// s4e-wcet) and reports the observed worst-case time against the static
// bound and the dynamic cycle count.
//
// Usage:
//
//	s4e-qta [-profile edge-small] [-annot prog.qta.json] [-blockprofile] prog.s
//	s4e-qta -irq [-samples 32] [-seed 1] [-engine superblock] [workload ...]
//
// The -irq mode switches to interrupt-response-time qualification: for
// each named interrupt demonstrator (default: all of them) it computes
// the static IRT bound and attacks the program with adversarially timed
// interrupts, reporting bound vs. observed worst case.
//
// Exit status: 0 on success, 1 on runtime failure (including an unsound
// IRT bound), 2 on usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/qta"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

func main() {
	profName := flag.String("profile", "edge-small", "timing profile (must match the annotation)")
	annot := flag.String("annot", "", "annotated CFG (default: input + .qta.json)")
	budget := flag.Uint64("budget", 100_000_000, "instruction budget")
	blockProfile := flag.Bool("blockprofile", false, "print the per-block visit profile")
	metricsPath := flag.String("metrics", "", "write analysis timing and engine metrics to `file` (.json for JSON, - for stdout, else Prometheus text)")
	tracePath := flag.String("trace", "", "write structured trace events (JSONL) to `file`")
	progress := flag.Bool("progress", false, "print a periodic progress line to stderr")
	irq := flag.Bool("irq", false, "interrupt-response-time qualification over the named interrupt workloads")
	samples := flag.Int("samples", 32, "adversarial trigger points per workload (-irq)")
	seed := flag.Uint64("seed", 1, "trigger-jitter seed (-irq)")
	engName := flag.String("engine", "superblock",
		"execution engine for -irq: "+strings.Join(emu.EngineNames(), ", "))
	flag.Parse()
	prof, ok := timing.Profiles()[*profName]
	if !ok {
		fmt.Fprintf(os.Stderr, "s4e-qta: unknown profile %q\n", *profName)
		os.Exit(2)
	}
	if *irq {
		runIRQ(prof, *engName, *samples, *seed, flag.Args())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-qta [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var tr *obs.Trace
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		tr, closeTrace, err = obs.NewFileTrace(*tracePath, obs.DefaultRing)
		if err != nil {
			fatal(err)
		}
	}

	name := *annot
	if name == "" {
		name = strings.TrimSuffix(flag.Arg(0), ".s") + ".qta.json"
	}
	decodeStart := time.Now()
	annotData, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	an, err := wcet.Decode(annotData)
	if err != nil {
		fatal(err)
	}
	decodeSecs := time.Since(decodeStart).Seconds()
	if an.Profile != prof.Name() {
		fmt.Fprintf(os.Stderr, "s4e-qta: warning: annotation was computed for profile %s\n", an.Profile)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := vp.New(vp.Config{Profile: prof, ConsoleOut: os.Stdout})
	if err != nil {
		fatal(err)
	}
	q := qta.New(an)
	if err := p.Machine.Hooks.Register(q); err != nil {
		fatal(err)
	}
	prog, err := p.LoadSource(vp.Prelude + string(src))
	if err != nil {
		fatal(err)
	}
	if findings, err := flow.LintProgram(prog, nil); err == nil {
		for _, f := range findings {
			if f.Severity >= lint.Possible {
				fmt.Fprintf(os.Stderr, "s4e-qta: lint: %s\n", f)
			}
		}
	}
	tr.Emit("qta-start", "prog", flag.Arg(0), "annot", name, "blocks", len(an.Blocks))
	runStart := time.Now()
	stop := run(p, *budget, *progress)
	runSecs := time.Since(runStart).Seconds()
	if stop.Reason != emu.StopExit && stop.Reason != emu.StopEbreak {
		fatal(fmt.Errorf("program ended with %v", stop))
	}
	res := q.NewResult(flag.Arg(0), p.Machine.Hart.Cycle, p.Machine.Hart.Instret)
	tr.Emit("qta-end", "static_wcet", res.StaticWCET, "qta_time", res.QTATime,
		"dynamic", res.Dynamic, "sound", res.Sound(), "run_seconds", runSecs)
	fmt.Println(res)
	fmt.Printf("blocks executed: %d/%d, unannotated transitions: %d, sound: %v\n",
		res.BlocksSeen, res.BlocksTotal, res.Missing, res.Sound())
	if *blockProfile {
		fmt.Print(q.Profile())
	}

	if *metricsPath != "" {
		reg := obs.NewRegistry()
		reg.Gauge("s4e_qta_decode_seconds", "annotation decode time").Set(decodeSecs)
		reg.Gauge("s4e_qta_run_seconds", "co-simulation run time").Set(runSecs)
		reg.Gauge("s4e_qta_static_wcet_cycles", "static WCET bound").Set(float64(res.StaticWCET))
		reg.Gauge("s4e_qta_observed_cycles", "QTA-observed worst-case time").Set(float64(res.QTATime))
		reg.Gauge("s4e_qta_dynamic_cycles", "emulator dynamic cycle count").Set(float64(res.Dynamic))
		reg.Counter("s4e_qta_missing_transitions_total", "transitions without an annotated edge").Add(res.Missing)
		p.RecordStats(reg)
		if err := reg.WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			fatal(err)
		}
	}
}

// run executes the program, optionally in budget chunks with a live
// progress line between them.
func run(p *vp.Platform, budget uint64, progress bool) emu.StopInfo {
	if !progress {
		return p.Run(budget)
	}
	const chunk = 50_000_000
	start := time.Now()
	for {
		step := uint64(chunk)
		if budget > 0 {
			rem := budget - p.Machine.Hart.Instret
			if rem == 0 {
				return emu.StopInfo{Reason: emu.StopBudget, PC: p.Machine.Hart.PC}
			}
			if rem < step {
				step = rem
			}
		}
		stop := p.Run(step)
		done := p.Machine.Hart.Instret
		if stop.Reason != emu.StopBudget || (budget > 0 && done >= budget) {
			return stop
		}
		secs := time.Since(start).Seconds()
		mips := 0.0
		if secs > 0 {
			mips = float64(done) / 1e6 / secs
		}
		fmt.Fprintf(os.Stderr, "s4e-qta: %d insts (%.0f MIPS)\n", done, mips)
	}
}

// runIRQ is the -irq mode: IRT qualification over interrupt workloads.
func runIRQ(prof *timing.Profile, engName string, samples int, seed uint64, names []string) {
	engine, err := emu.ParseEngine(engName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s4e-qta:", err)
		os.Exit(2)
	}
	var ws []workloads.Workload
	if len(names) == 0 {
		ws = workloads.Interrupt()
	} else {
		for _, n := range names {
			w, ok := workloads.ByName(n)
			if !ok || w.Handler == "" {
				fmt.Fprintf(os.Stderr, "s4e-qta: %q is not an interrupt workload\n", n)
				os.Exit(2)
			}
			ws = append(ws, w)
		}
	}
	allSound := true
	for _, w := range ws {
		res, err := flow.RunIRT(context.Background(), w, prof, flow.IRTConfig{
			Engine:  engine,
			Samples: samples,
			Seed:    seed,
		})
		if err != nil {
			fatal(err)
		}
		s := res.Static
		fmt.Printf("%s: IRT bound %d = blocking %d (critical %d, %d sites) + chain %d + entry %d + handler %d + mret %d\n",
			w.Name, s.Bound, s.Blocking, s.CriticalMax, s.CriticalSites,
			s.Chain, s.TrapCost, s.HandlerWCET, s.MretPenalty)
		m := res.Measured
		fmt.Printf("%s: observed max %d @ cycle %d (%d delivered, %d skipped of %d over %d cycles), ratio %.2f, sound: %v\n",
			w.Name, m.MaxLatency, m.MaxTrigger, m.Delivered, m.Skipped, m.Samples,
			m.GoldenCycles, res.Ratio, res.Sound)
		if m.Mismatches != 0 {
			fmt.Printf("%s: WARNING: %d perturbed runs broke the checksum\n", w.Name, m.Mismatches)
			allSound = false
		}
		allSound = allSound && res.Sound
	}
	if !allSound {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-qta:", err)
	os.Exit(1)
}
