// Command s4e-run executes a RISC-V program (ELF or assembly source) on
// the edge virtual platform.
//
// Usage:
//
//	s4e-run [-profile edge-small] [-isa rv32imfc] [-engine threaded] [-trace] [-budget N] prog.{s,elf}
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/plugin"
	"repro/internal/timing"
	"repro/internal/vp"
)

// parseISA maps a -isa flag value to an extension set.
func parseISA(s string) (isa.ExtSet, error) {
	switch strings.ToLower(s) {
	case "rv32i":
		return isa.RV32I, nil
	case "rv32im":
		return isa.RV32IM, nil
	case "rv32imf":
		return isa.RV32IMF, nil
	case "rv32imb":
		return isa.RV32IMB, nil
	case "rv32imc":
		return isa.RV32IMC, nil
	case "rv32imfc":
		return isa.RV32IMFC, nil
	case "full", "rv32full":
		return isa.RV32Full, nil
	}
	return 0, fmt.Errorf("unknown ISA configuration %q", s)
}

func main() {
	profName := flag.String("profile", "unit", "timing profile: unit, edge-small, edge-fast")
	isaName := flag.String("isa", "full", "ISA configuration: rv32i(m)(f)(b)(c), full")
	engName := flag.String("engine", "threaded", "execution engine: threaded, switch")
	trace := flag.Bool("trace", false, "print an instruction trace")
	budget := flag.Uint64("budget", 100_000_000, "instruction budget")
	stats := flag.Bool("stats", true, "print run statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-run [flags] prog.{s,elf}")
		flag.PrintDefaults()
		os.Exit(2)
	}

	prof, ok := timing.Profiles()[*profName]
	if !ok {
		fatal(fmt.Errorf("unknown profile %q", *profName))
	}
	set, err := parseISA(*isaName)
	if err != nil {
		fatal(err)
	}

	p, err := vp.New(vp.Config{Profile: prof, ISA: set, ConsoleOut: os.Stdout})
	if err != nil {
		fatal(err)
	}
	switch strings.ToLower(*engName) {
	case "threaded":
		p.Machine.Engine = emu.EngineThreaded
	case "switch":
		p.Machine.Engine = emu.EngineSwitch
	default:
		fatal(fmt.Errorf("unknown engine %q", *engName))
	}
	if *trace {
		if err := p.Machine.Hooks.Register(&plugin.Tracer{W: os.Stderr}); err != nil {
			fatal(err)
		}
	}

	in := flag.Arg(0)
	data, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(in, ".s") || strings.HasSuffix(in, ".S") {
		if _, err := p.LoadSource(vp.Prelude + string(data)); err != nil {
			fatal(err)
		}
	} else {
		if _, err := p.LoadELF(data); err != nil {
			fatal(err)
		}
	}

	stop := p.Run(*budget)
	if *stats {
		h := &p.Machine.Hart
		fmt.Fprintf(os.Stderr, "stop:    %v\ninsts:   %d\ncycles:  %d (%s)\nengine:  %s\nblocks:  %d cached\n",
			stop, h.Instret, h.Cycle, prof.Name(), p.Machine.Engine, p.Machine.CachedBlocks())
	}
	if stop.Reason == emu.StopExit {
		os.Exit(int(stop.Code & 0x7f))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-run:", err)
	os.Exit(1)
}
