// Command s4e-run executes a RISC-V program (ELF or assembly source) on
// the edge virtual platform.
//
// Usage:
//
//	s4e-run [-profile edge-small] [-isa rv32imfc] [-engine threaded] [-itrace] [-budget N] prog.{s,elf}
//
// Exit status: the guest's exit code (nonzero codes are clamped to stay
// nonzero after the 7-bit mask), 1 on runtime failure, 2 on usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/plugin"
	"repro/internal/timing"
	"repro/internal/vp"
)

// parseISA maps a -isa flag value to an extension set.
func parseISA(s string) (isa.ExtSet, error) {
	switch strings.ToLower(s) {
	case "rv32i":
		return isa.RV32I, nil
	case "rv32im":
		return isa.RV32IM, nil
	case "rv32imf":
		return isa.RV32IMF, nil
	case "rv32imb":
		return isa.RV32IMB, nil
	case "rv32imc":
		return isa.RV32IMC, nil
	case "rv32imfc":
		return isa.RV32IMFC, nil
	case "full", "rv32full":
		return isa.RV32Full, nil
	}
	return 0, fmt.Errorf("unknown ISA configuration %q", s)
}

func main() {
	profName := flag.String("profile", "unit", "timing profile: unit, edge-small, edge-fast")
	isaName := flag.String("isa", "full", "ISA configuration: rv32i(m)(f)(b)(c), full")
	engName := flag.String("engine", "threaded",
		"execution engine: "+strings.Join(emu.EngineNames(), ", "))
	itrace := flag.Bool("itrace", false, "print an instruction trace to stderr")
	budget := flag.Uint64("budget", 100_000_000, "instruction budget")
	stats := flag.Bool("stats", true, "print run statistics")
	metricsPath := flag.String("metrics", "", "write engine/bus metrics to `file` after the run (.json for JSON, - for stdout, else Prometheus text)")
	tracePath := flag.String("trace", "", "write structured trace events (JSONL) to `file`")
	progress := flag.Bool("progress", false, "print a periodic progress line to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-run [flags] prog.{s,elf}")
		flag.PrintDefaults()
		os.Exit(2)
	}

	prof, ok := timing.Profiles()[*profName]
	if !ok {
		usage(fmt.Errorf("unknown profile %q", *profName))
	}
	set, err := parseISA(*isaName)
	if err != nil {
		usage(err)
	}

	p, err := vp.New(vp.Config{Profile: prof, ISA: set, ConsoleOut: os.Stdout})
	if err != nil {
		fatal(err)
	}
	engine, err := emu.ParseEngine(strings.ToLower(*engName))
	if err != nil {
		usage(err)
	}
	p.Machine.Engine = engine
	if *itrace {
		if err := p.Machine.Hooks.Register(&plugin.Tracer{W: os.Stderr}); err != nil {
			fatal(err)
		}
	}

	var tr *obs.Trace
	var closeTrace func() error
	if *tracePath != "" {
		tr, closeTrace, err = obs.NewFileTrace(*tracePath, obs.DefaultRing)
		if err != nil {
			fatal(err)
		}
	}

	in := flag.Arg(0)
	data, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(in, ".s") || strings.HasSuffix(in, ".S") {
		if _, err := p.LoadSource(vp.Prelude + string(data)); err != nil {
			fatal(err)
		}
	} else {
		if _, err := p.LoadELF(data); err != nil {
			fatal(err)
		}
	}

	tr.Emit("run-start", "prog", in, "budget", *budget, "engine", *engName, "profile", *profName)
	stop := run(p, *budget, *progress)
	h := &p.Machine.Hart
	tr.Emit("run-end", "reason", stop.Reason.String(), "code", stop.Code,
		"insts", h.Instret, "cycles", h.Cycle)

	if *stats {
		fmt.Fprintf(os.Stderr, "stop:    %v\ninsts:   %d\ncycles:  %d (%s)\nengine:  %s\nblocks:  %d cached\n",
			stop, h.Instret, h.Cycle, prof.Name(), p.Machine.Engine, p.Machine.CachedBlocks())
	}
	if *metricsPath != "" {
		reg := obs.NewRegistry()
		p.RecordStats(reg)
		if err := reg.WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			fatal(err)
		}
	}
	if stop.Reason == emu.StopExit {
		// The shell convention keeps 7 bits of exit status; a nonzero
		// guest code must never collapse to "success" under the mask.
		code := int(stop.Code & 0x7f)
		if code == 0 && stop.Code != 0 {
			code = 1
		}
		os.Exit(code)
	}
}

// run executes the program, optionally in chunks with a live progress
// line between them (budget stops are resumable, so chunking does not
// change the architectural result).
func run(p *vp.Platform, budget uint64, progress bool) emu.StopInfo {
	if !progress {
		return p.Run(budget)
	}
	const chunk = 50_000_000
	start := time.Now()
	for {
		step := uint64(chunk)
		if budget > 0 {
			rem := budget - p.Machine.Hart.Instret
			if rem == 0 {
				return emu.StopInfo{Reason: emu.StopBudget, PC: p.Machine.Hart.PC}
			}
			if rem < step {
				step = rem
			}
		}
		stop := p.Run(step)
		done := p.Machine.Hart.Instret
		if stop.Reason != emu.StopBudget || (budget > 0 && done >= budget) {
			return stop
		}
		secs := time.Since(start).Seconds()
		mips := 0.0
		if secs > 0 {
			mips = float64(done) / 1e6 / secs
		}
		fmt.Fprintf(os.Stderr, "s4e-run: %d insts (%.0f MIPS)\n", done, mips)
	}
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "s4e-run:", err)
	fmt.Fprintln(os.Stderr, "usage: s4e-run [flags] prog.{s,elf}")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-run:", err)
	os.Exit(1)
}
