// Command s4e-wcet runs the static WCET analysis over an assembly
// program and writes the WCET-annotated CFG (the QTA input artifact).
//
// Usage:
//
//	s4e-wcet [-profile edge-small] [-bounds loop=32,fill=16] [-o prog.qta.json] [-dot prog.dot] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/flow"
	"repro/internal/lint"
	"repro/internal/timing"
)

func parseBounds(s string) (map[string]int, error) {
	out := map[string]int{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad bound %q (want label=N)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad bound count %q", kv[1])
		}
		out[strings.TrimSpace(kv[0])] = n
	}
	return out, nil
}

func main() {
	profName := flag.String("profile", "edge-small", "timing profile")
	boundsFlag := flag.String("bounds", "", "loop bounds: label=N,label=N,...")
	out := flag.String("o", "", "annotated CFG output (default: input + .qta.json)")
	dot := flag.String("dot", "", "also write the CFG in Graphviz format")
	report := flag.Bool("report", false, "print the full per-block analysis report")
	infer := flag.Bool("infer", true, "infer bounds of canonical counted loops automatically")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-wcet [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prof, ok := timing.Profiles()[*profName]
	if !ok {
		usage(fmt.Errorf("unknown profile %q", *profName))
	}
	bounds, err := parseBounds(*boundsFlag)
	if err != nil {
		usage(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	a, err := flow.AnalyzeOpt(string(src), prof, bounds, *infer)
	if err != nil {
		fatal(err)
	}
	for _, f := range a.Lint {
		if f.Severity >= lint.Possible {
			fmt.Fprintf(os.Stderr, "s4e-wcet: lint: %s\n", f)
		}
	}
	name := *out
	if name == "" {
		name = strings.TrimSuffix(flag.Arg(0), ".s") + ".qta.json"
	}
	data, err := a.Annotated.Encode()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(name, data, 0o644); err != nil {
		fatal(err)
	}
	if *dot != "" {
		symByAddr := map[uint32]string{}
		for n, addr := range a.Program.Symbols {
			symByAddr[addr] = n
		}
		if err := os.WriteFile(*dot, []byte(a.Graph.DOT(symByAddr)), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s: %d blocks, %d edges, %d bounded loops\n",
		name, len(a.Annotated.Blocks), len(a.Annotated.Edges), len(a.Annotated.Bounds))
	fmt.Printf("WCET bound: %d cycles (profile %s)\n", a.Annotated.WCET, prof.Name())
	if *report {
		symByAddr := map[uint32]string{}
		for n, addr := range a.Program.Symbols {
			symByAddr[addr] = n
		}
		fmt.Print(a.Annotated.Report(symByAddr))
	}
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "s4e-wcet:", err)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-wcet:", err)
	os.Exit(1)
}
