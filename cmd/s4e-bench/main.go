// Command s4e-bench measures emulation speed (host MIPS) per workload
// per execution engine and writes the results as JSON, so successive
// revisions can track the performance trajectory.
//
// Usage:
//
//	s4e-bench [-o BENCH_emu.json] [-reps 3] [-workloads xtea,crc32]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// engineMode is one point on the engine axis.
type engineMode struct {
	name    string
	engine  emu.Engine
	disable bool
}

var modes = []engineMode{
	{"threaded", emu.EngineThreaded, false},
	{"switch", emu.EngineSwitch, false},
	{"no-tb-cache", emu.EngineSwitch, true},
}

// Result is the written JSON document.
type Result struct {
	GoVersion string               `json:"go_version"`
	NumCPU    int                  `json:"num_cpu"`
	Reps      int                  `json:"reps"`
	Workloads []string             `json:"workloads"`
	MIPS      map[string][]float64 `json:"mips"` // engine -> per-workload MIPS
}

// measure times reps steady-state runs of one workload under an engine
// mode (platform built once, rewound between runs) and returns the best
// observed MIPS.
func measure(w workloads.Workload, m engineMode, reps int) (float64, error) {
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		return 0, err
	}
	p, err := vp.New(vp.Config{Sensor: w.Sensor})
	if err != nil {
		return 0, err
	}
	p.Machine.Engine = m.engine
	p.Machine.DisableTBCache = m.disable
	if err := p.LoadProgram(prog); err != nil {
		return 0, err
	}
	base := p.Snapshot()
	best := 0.0
	for r := 0; r < reps; r++ {
		p.RestoreReuse(base, prog)
		start := time.Now()
		stop := p.Run(w.Budget)
		d := time.Since(start).Seconds()
		if stop.Reason != emu.StopExit {
			return 0, fmt.Errorf("%s stopped with %v", w.Name, stop)
		}
		if mips := float64(p.Machine.Hart.Instret) / d / 1e6; mips > best {
			best = mips
		}
	}
	return best, nil
}

func main() {
	out := flag.String("o", "BENCH_emu.json", "output JSON file")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	names := flag.String("workloads", "xtea,crc32,fir,matmul,sort,pid",
		"comma-separated workload subset")
	flag.Parse()

	var selected []workloads.Workload
	for _, name := range strings.Split(*names, ",") {
		w, ok := workloads.ByName(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", name))
		}
		selected = append(selected, w)
	}

	res := Result{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Reps:      *reps,
		MIPS:      map[string][]float64{},
	}
	for _, w := range selected {
		res.Workloads = append(res.Workloads, w.Name)
	}

	fmt.Printf("%-14s", "program")
	for _, m := range modes {
		fmt.Printf(" %12s", m.name)
	}
	fmt.Println()
	for i, w := range selected {
		fmt.Printf("%-14s", w.Name)
		for _, m := range modes {
			best, err := measure(w, m, *reps)
			if err != nil {
				fatal(err)
			}
			res.MIPS[m.name] = append(res.MIPS[m.name], best)
			fmt.Printf(" %12.1f", best)
		}
		// Geometric means need every workload; print the row ratio now.
		fmt.Printf("   %.2fx\n", res.MIPS["threaded"][i]/res.MIPS["switch"][i])
	}
	fmt.Printf("geomean threaded/switch: %.2fx\n",
		geomeanRatio(res.MIPS["threaded"], res.MIPS["switch"]))

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// geomeanRatio is the geometric mean of a[i]/b[i].
func geomeanRatio(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	prod := 1.0
	for i := range a {
		prod *= a[i] / b[i]
	}
	return math.Pow(prod, 1/float64(len(a)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-bench:", err)
	os.Exit(1)
}
