// Command s4e-bench measures emulation speed (host MIPS) per workload
// per execution engine and writes the results as JSON, so successive
// revisions can track the performance trajectory.
//
// Usage:
//
//	s4e-bench [-o BENCH_emu.json] [-reps 3] [-workloads xtea,crc32]
//
// Exit status: 0 on success, 1 on runtime failure, 2 on usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// engineMode is one point on the engine axis.
type engineMode struct {
	name    string
	engine  emu.Engine
	disable bool
}

var allModes = []engineMode{
	{"threaded", emu.EngineThreaded, false},
	{"switch", emu.EngineSwitch, false},
	{"superblock", emu.EngineSuperblock, false},
	{"no-tb-cache", emu.EngineSwitch, true},
}

// selectModes resolves the -engines flag: a comma-separated subset of
// the mode names above, in the requested order.
func selectModes(spec string) ([]engineMode, error) {
	var out []engineMode
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range allModes {
			if m.name == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, m := range allModes {
				known = append(known, m.name)
			}
			return nil, fmt.Errorf("unknown engine mode %q (%s)", name, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// engineStats is the per-measurement engine counter snapshot recorded
// into the JSON document (cumulative over the reps of one measurement).
type engineStats struct {
	TBsCompiled      uint64  `json:"tbs_compiled"`
	TBsInvalidated   uint64  `json:"tbs_invalidated"`
	JumpCacheHits    uint64  `json:"jump_cache_hits"`
	JumpCacheMisses  uint64  `json:"jump_cache_misses"`
	JumpCacheHitRate float64 `json:"jump_cache_hit_rate"`
	ChainFollows     uint64  `json:"chain_follows"`
	ChainsSevered    uint64  `json:"chains_severed"`
	InstsRetired     uint64  `json:"insts_retired"`
	// Superblock trace counters (zero for non-trace engines, omitted).
	TracesFormed      uint64  `json:"traces_formed,omitempty"`
	AvgTraceBlocks    float64 `json:"avg_trace_blocks,omitempty"`
	TraceRuns         uint64  `json:"trace_runs,omitempty"`
	TraceSideExits    uint64  `json:"trace_side_exits,omitempty"`
	TraceSideExitRate float64 `json:"trace_side_exit_rate,omitempty"`
	TracesInvalidated uint64  `json:"traces_invalidated,omitempty"`
	// Platform rewind cost across the measurement's reps (the bench
	// rewinds between reps, so this shows the per-workload restore
	// footprint under the dirty-page machinery).
	Restores     uint64 `json:"restores,omitempty"`
	RestoreBytes uint64 `json:"restore_bytes,omitempty"`
	RestorePages uint64 `json:"restore_pages,omitempty"`
}

// campaignStats is one point on the campaign pool axis: a full fault
// campaign at fixed worker count with the shared translation pool on or
// off, plus the accumulated worker engine counters that explain the
// difference (tbs_compiled drops ~workers× with the pool on).
type campaignStats struct {
	Workload        string  `json:"workload"`
	Engine          string  `json:"engine"`
	Workers         int     `json:"workers"`
	Mutants         int     `json:"mutants"`
	MutantsPerSec   float64 `json:"mutants_per_sec"`
	TBsCompiled     uint64  `json:"tbs_compiled"`
	PoolBlocks      uint64  `json:"pool_blocks"`
	PoolHits        uint64  `json:"pool_hits"`
	OverlayCompiles uint64  `json:"overlay_compiles"`
}

// serviceStats is one point on the analysis-service axis: a burst of
// identical campaign jobs pushed through internal/serve at one queue
// depth, with the cross-job translation-pool cache on or off. Latency
// quantiles come from the service's own obs histogram.
type serviceStats struct {
	Workload   string  `json:"workload"`
	QueueDepth int     `json:"queue_depth"`
	Workers    int     `json:"workers"`
	Jobs       int     `json:"jobs"`
	Mutants    int     `json:"mutants_per_job"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	Shed       int     `json:"shed"` // 429-equivalent rejections the client retried
	PoolHits   uint64  `json:"pool_hits"`
}

// irqStats is one point on the interrupt-response axis (experiment
// E13): the static IRT bound of one interrupt demonstrator against the
// worst service latency the adversarial co-sim observes, and the
// pessimism ratio between them.
type irqStats struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"`
	Bound         uint64  `json:"bound_cycles"`
	MaxLatency    uint64  `json:"observed_max_cycles"`
	Ratio         float64 `json:"ratio"`
	Samples       int     `json:"samples"`
	Delivered     int     `json:"delivered"`
	Sound         bool    `json:"sound"`
	SamplesPerSec float64 `json:"samples_per_sec"`
}

// restoreStats is one point on the restore axis (experiment E12): a
// fault campaign whose per-mutant rewind cost is measured with
// page-granular dirty tracking on ("pages") or off ("watermark", the
// bounding-box baseline). The scattered-store workload is the
// pathological case for the baseline; the dense workload guards against
// a throughput regression on ordinary store patterns.
type restoreStats struct {
	Workload              string  `json:"workload"`
	Tracking              string  `json:"tracking"` // "pages" or "watermark"
	Mutants               int     `json:"mutants"`
	MutantsPerSec         float64 `json:"mutants_per_sec"`
	RestoreBytesPerMutant float64 `json:"restore_bytes_per_mutant"`
	RestorePagesPerMutant float64 `json:"restore_pages_per_mutant"`
}

// Result is the written JSON document.
type Result struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler's actual parallelism cap; num_cpu
	// alone hides a pinned or cgroup-limited run on the campaign and
	// service axes.
	GoMaxProcs int                  `json:"gomaxprocs"`
	Reps       int                  `json:"reps"`
	Workloads  []string             `json:"workloads"`
	MIPS       map[string][]float64 `json:"mips"` // engine -> per-workload MIPS
	// EngineStats mirrors MIPS: engine mode -> per-workload counters.
	EngineStats map[string][]engineStats `json:"engine_stats"`
	// Campaign is the fault-campaign pool axis ("pool-on"/"pool-off").
	Campaign map[string]campaignStats `json:"campaign,omitempty"`
	// Restore is the differential-restore axis (E12), keyed
	// "{scatter,dense}-{pages,watermark}".
	Restore map[string]restoreStats `json:"restore,omitempty"`
	// Service is the analysis-service throughput axis, keyed
	// "q<depth>-pool-{on,off}".
	Service map[string]serviceStats `json:"service,omitempty"`
	// IRQ is the interrupt-response axis (E13), keyed by interrupt
	// demonstrator name.
	IRQ map[string]irqStats `json:"irq,omitempty"`
	// AxisSeconds is the wall-clock each axis took end to end, so
	// throughput numbers can be read against the time budget that
	// produced them.
	AxisSeconds map[string]float64 `json:"axis_seconds"`
}

// measure times reps steady-state runs of one workload under an engine
// mode (platform built once, rewound between runs) and returns the best
// observed MIPS plus the platform for stats inspection.
func measure(w workloads.Workload, m engineMode, reps int) (float64, *vp.Platform, error) {
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		return 0, nil, err
	}
	p, err := vp.New(vp.Config{Sensor: w.Sensor})
	if err != nil {
		return 0, nil, err
	}
	p.Machine.Engine = m.engine
	p.Machine.DisableTBCache = m.disable
	if err := p.LoadProgram(prog); err != nil {
		return 0, nil, err
	}
	base := p.Snapshot()
	best := 0.0
	for r := 0; r < reps; r++ {
		p.RestoreReuse(base, prog)
		start := time.Now()
		stop := p.Run(w.Budget)
		d := time.Since(start).Seconds()
		if stop.Reason != emu.StopExit {
			return 0, nil, fmt.Errorf("%s stopped with %v", w.Name, stop)
		}
		if mips := float64(p.Machine.Hart.Instret) / d / 1e6; mips > best {
			best = mips
		}
	}
	return best, p, nil
}

// measureCampaign runs one fault campaign over the workload and returns
// the campaign point for the pool axis. reps campaigns are run and the
// best throughput kept; engine counters are from the best run.
func measureCampaign(w workloads.Workload, engine emu.Engine, workers, mutants, reps int, noPool bool) (campaignStats, error) {
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		return campaignStats{}, err
	}
	tg := &fault.Target{Program: prog, Budget: w.Budget, Sensor: w.Sensor, Engine: engine}
	g, err := fault.RunGolden(tg)
	if err != nil {
		return campaignStats{}, err
	}
	end := vp.RAMBase + uint32(len(prog.Bytes))
	// Code bit-flips weigh heavily in the mix on purpose: each one
	// flushes the worker's private cache, so the re-warm path (pool
	// adoption vs recompilation) is what this axis contrasts.
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         7,
		GPRTransient: mutants * 2 / 5,
		MemPermanent: mutants / 5,
		CodeBitflip:  mutants - mutants*2/5 - mutants/5,
		GoldenInsts:  g.Insts,
		CodeStart:    vp.RAMBase, CodeEnd: end,
		DataStart: vp.RAMBase, DataEnd: end,
	})
	cs := campaignStats{
		Workload: w.Name,
		Engine:   tg.Engine.String(),
		Workers:  workers,
		Mutants:  len(plan.Faults),
	}
	for r := 0; r < reps; r++ {
		reg := obs.NewRegistry()
		res, err := fault.CampaignOpt(tg, plan, fault.Options{
			Workers: workers, NoSharedPool: noPool, Metrics: reg,
		})
		if err != nil {
			return campaignStats{}, err
		}
		mps := float64(res.Total) / res.Duration.Seconds()
		if mps > cs.MutantsPerSec {
			cs.MutantsPerSec = mps
			cs.TBsCompiled = reg.Counter(vp.MetricTBsCompiled, "").Value()
			cs.PoolBlocks = uint64(reg.Gauge("s4e_fault_pool_blocks", "").Value())
			cs.PoolHits = reg.Counter(vp.MetricPoolHits, "").Value()
			cs.OverlayCompiles = reg.Counter(vp.MetricOverlayCompiles, "").Value()
		}
	}
	return cs, nil
}

// scatterSource is the restore axis's pathological workload: every
// iteration dirties one word at the bottom of RAM (buf, just past the
// code) and one at the top (stack-relative), so the store-watermark
// bounding box spans essentially all platform RAM while only a couple
// of pages are actually dirty. It exits with a checksum like every
// other workload, so fault campaigns classify mutants normally.
const scatterSource = `
	li a0, 0
	li a2, 64
	la a3, buf
scatter:
	add a0, a0, a2
	sw a0, 0(a3)
	sw a0, -16(sp)
	addi a2, a2, -1
	bnez a2, scatter
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
buf:
	.word 0
`

// scatterBudget safely covers the 64-iteration scatter loop.
const scatterBudget = 10_000

// measureRestore runs one fault campaign with per-mutant restore
// accounting, with dirty-page tracking on (pages=true) or off (the
// watermark baseline). One worker keeps the byte accounting
// deterministic: every mutant's dirty state except the last one's is
// rewound exactly once.
func measureRestore(w, src string, budget uint64, mutants, reps int, pages bool) (restoreStats, error) {
	prog, err := asm.AssembleAt(vp.Prelude+src, vp.RAMBase)
	if err != nil {
		return restoreStats{}, err
	}
	tg := &fault.Target{Program: prog, Budget: budget, NoDirtyPages: !pages}
	g, err := fault.RunGolden(tg)
	if err != nil {
		return restoreStats{}, err
	}
	end := vp.RAMBase + uint32(len(prog.Bytes))
	// Register and data faults only: the restore axis measures rewind
	// cost, and these models dirty state without invalidating code, so
	// the contrast between box-span and page-run copying is undiluted.
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         12,
		GPRTransient: mutants / 2,
		MemPermanent: mutants - mutants/2,
		GoldenInsts:  g.Insts,
		DataStart:    vp.RAMBase, DataEnd: end,
	})
	rs := restoreStats{
		Workload: w,
		Tracking: map[bool]string{true: "pages", false: "watermark"}[pages],
		Mutants:  len(plan.Faults),
	}
	for r := 0; r < reps; r++ {
		reg := obs.NewRegistry()
		res, err := fault.CampaignOpt(tg, plan, fault.Options{Workers: 1, Metrics: reg})
		if err != nil {
			return restoreStats{}, err
		}
		mps := float64(res.Total) / res.Duration.Seconds()
		if mps > rs.MutantsPerSec {
			rs.MutantsPerSec = mps
			if n := reg.Counter(vp.MetricRestores, "").Value(); n > 0 {
				rs.RestoreBytesPerMutant = float64(reg.Counter(vp.MetricRestoreBytesTotal, "").Value()) / float64(n)
				rs.RestorePagesPerMutant = float64(reg.Counter(vp.MetricRestorePagesTotal, "").Value()) / float64(n)
			}
		}
	}
	return rs, nil
}

// measureService pushes a burst of identical campaign jobs through an
// in-process analysis service at one queue depth and reports jobs/sec
// plus the p50/p99 execution latency read back from the service's
// latency histogram. A full queue is handled like an HTTP client would
// handle 429: back off briefly and resubmit (counted in Shed).
func measureService(w workloads.Workload, depth, workers, jobs, mutants int, noPool bool) (serviceStats, error) {
	s := serve.New(serve.Config{
		Workers:        workers,
		QueueDepth:     depth,
		DefaultTimeout: 5 * time.Minute,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()
	spec := serve.FaultSpec{
		Seed:         7,
		GPRTransient: mutants * 2 / 5,
		MemPermanent: mutants / 5,
		CodeBitflip:  mutants - mutants*2/5 - mutants/5,
		Workers:      1, // the service's worker pool is the parallelism
		NoPool:       noPool,
	}
	st := serviceStats{
		Workload: w.Name, QueueDepth: depth, Workers: workers,
		Jobs: jobs, Mutants: mutants,
	}

	start := time.Now()
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		for {
			js, err := s.Submit(serve.Request{
				Type: "fault", Source: w.Source, Budget: w.Budget, Fault: &spec,
			})
			if errors.Is(err, serve.ErrQueueFull) {
				st.Shed++
				time.Sleep(500 * time.Microsecond)
				continue
			}
			if err != nil {
				return serviceStats{}, err
			}
			ids = append(ids, js.ID)
			break
		}
	}
	for _, id := range ids {
		for {
			js, ok := s.Job(id)
			if !ok {
				return serviceStats{}, fmt.Errorf("service job %s vanished", id)
			}
			if js.State == serve.StateDone {
				break
			}
			if js.State == serve.StateErrored || js.State == serve.StateCancelled {
				return serviceStats{}, fmt.Errorf("service job %s: %s (%s)", id, js.State, js.Error)
			}
			time.Sleep(time.Millisecond)
		}
	}
	elapsed := time.Since(start).Seconds()
	st.JobsPerSec = float64(jobs) / elapsed

	reg := s.Metrics()
	h := reg.Histogram(`s4e_serve_job_seconds{type="fault"}`, "", nil)
	st.P50MS = h.Quantile(0.5) * 1e3
	st.P99MS = h.Quantile(0.99) * 1e3
	st.PoolHits = reg.Counter(`s4e_serve_pool_jobs_total{cache="hit"}`, "").Value()
	return st, nil
}

func main() {
	out := flag.String("o", "BENCH_emu.json", "output JSON file")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	names := flag.String("workloads", "xtea,crc32,fir,matmul,sort,pid",
		"comma-separated workload subset")
	engines := flag.String("engines", "threaded,switch,superblock,no-tb-cache",
		"comma-separated engine-mode subset for the MIPS axis")
	campWorkload := flag.String("campaign-workload", "pid",
		"workload for the fault-campaign pool axis (empty: skip the campaign axis)")
	campMutants := flag.Int("campaign-mutants", 400, "mutants per campaign measurement")
	campWorkers := flag.Int("campaign-workers", 4, "campaign workers per measurement")
	restoreMutants := flag.Int("restore-mutants", 300,
		"mutants per restore-axis measurement (0: skip the restore axis)")
	restoreDense := flag.String("restore-dense-workload", "crc32",
		"dense workload for the restore axis's no-regression arm")
	svcJobs := flag.Int("service-jobs", 16,
		"jobs per analysis-service measurement (0: skip the service axis)")
	svcWorkload := flag.String("service-workload", "xtea", "workload for the service axis")
	svcMutants := flag.Int("service-mutants", 60, "mutants per service campaign job")
	svcWorkers := flag.Int("service-workers", 4, "service worker-pool size")
	irqSamples := flag.Int("irq-samples", 24,
		"adversarial trigger samples per interrupt demonstrator on the irq axis (0: skip the irq axis)")
	metricsPath := flag.String("metrics", "", "write accumulated engine/bus metrics to `file` (.json for JSON, - for stdout, else Prometheus text)")
	tracePath := flag.String("trace", "", "write per-measurement trace events (JSONL) to `file`")
	progress := flag.Bool("progress", false, "print a progress line per measurement to stderr")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: s4e-bench [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var selected []workloads.Workload
	for _, name := range strings.Split(*names, ",") {
		w, ok := workloads.ByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "s4e-bench: unknown workload %q\n", name)
			os.Exit(2)
		}
		selected = append(selected, w)
	}
	modes, err := selectModes(*engines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s4e-bench:", err)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}
	var tr *obs.Trace
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		tr, closeTrace, err = obs.NewFileTrace(*tracePath, obs.DefaultRing)
		if err != nil {
			fatal(err)
		}
	}

	res := Result{
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Reps:        *reps,
		MIPS:        map[string][]float64{},
		EngineStats: map[string][]engineStats{},
		AxisSeconds: map[string]float64{},
	}
	for _, w := range selected {
		res.Workloads = append(res.Workloads, w.Name)
	}

	axisStart := time.Now()
	fmt.Printf("%-14s", "program")
	for _, m := range modes {
		fmt.Printf(" %12s", m.name)
	}
	fmt.Println()
	for i, w := range selected {
		fmt.Printf("%-14s", w.Name)
		for _, m := range modes {
			if *progress {
				fmt.Fprintf(os.Stderr, "s4e-bench: measuring %s/%s (%d reps)\n", w.Name, m.name, *reps)
			}
			best, p, err := measure(w, m, *reps)
			if err != nil {
				fatal(err)
			}
			es := p.Machine.Stats()
			rst := p.RestoreStats()
			res.MIPS[m.name] = append(res.MIPS[m.name], best)
			res.EngineStats[m.name] = append(res.EngineStats[m.name], engineStats{
				TBsCompiled:       es.TBsCompiled,
				TBsInvalidated:    es.TBsInvalidated,
				JumpCacheHits:     es.JumpCacheHits,
				JumpCacheMisses:   es.JumpCacheMisses,
				JumpCacheHitRate:  es.JumpCacheHitRate(),
				ChainFollows:      es.ChainFollows,
				ChainsSevered:     es.ChainsSevered,
				InstsRetired:      p.Machine.Hart.Instret,
				TracesFormed:      es.TracesFormed,
				AvgTraceBlocks:    es.AvgTraceBlocks(),
				TraceRuns:         es.TraceRuns,
				TraceSideExits:    es.TraceSideExits,
				TraceSideExitRate: es.TraceSideExitRate(),
				TracesInvalidated: es.TracesInvalidated,
				Restores:          rst.Restores,
				RestoreBytes:      rst.RestoreBytes,
				RestorePages:      rst.RestorePages,
			})
			p.RecordStats(reg)
			tr.Emit("measurement", "workload", w.Name, "mode", m.name, "mips", best,
				"jump_cache_hit_rate", es.JumpCacheHitRate())
			fmt.Printf(" %12.1f", best)
		}
		// Geometric means need every workload; print the row ratio now.
		if t, s := res.MIPS["threaded"], res.MIPS["switch"]; len(t) > i && len(s) > i {
			fmt.Printf("   %.2fx", t[i]/s[i])
		}
		fmt.Println()
	}
	for _, pair := range [][2]string{{"threaded", "switch"}, {"superblock", "threaded"}} {
		a, b := res.MIPS[pair[0]], res.MIPS[pair[1]]
		if len(a) == len(selected) && len(b) == len(selected) {
			fmt.Printf("geomean %s/%s: %.2fx\n", pair[0], pair[1], geomeanRatio(a, b))
		}
	}
	res.AxisSeconds["mips"] = time.Since(axisStart).Seconds()

	// Campaign pool axis: same plan, shared translation pool on vs off.
	axisStart = time.Now()
	if *campWorkload != "" {
		w, ok := workloads.ByName(*campWorkload)
		if !ok {
			fmt.Fprintf(os.Stderr, "s4e-bench: unknown campaign workload %q\n", *campWorkload)
			os.Exit(2)
		}
		res.Campaign = map[string]campaignStats{}
		// Threaded keys keep their historical names ("pool-on"/"pool-off");
		// the superblock engine adds a prefixed pair to the same axis.
		for _, mode := range []struct {
			name   string
			engine emu.Engine
			noPool bool
		}{
			{"pool-on", emu.EngineThreaded, false},
			{"pool-off", emu.EngineThreaded, true},
			{"superblock-pool-on", emu.EngineSuperblock, false},
			{"superblock-pool-off", emu.EngineSuperblock, true},
		} {
			if *progress {
				fmt.Fprintf(os.Stderr, "s4e-bench: campaign %s/%s (%d mutants, %d workers, %d reps)\n",
					w.Name, mode.name, *campMutants, *campWorkers, *reps)
			}
			cs, err := measureCampaign(w, mode.engine, *campWorkers, *campMutants, *reps, mode.noPool)
			if err != nil {
				fatal(err)
			}
			res.Campaign[mode.name] = cs
			tr.Emit("campaign-measurement", "mode", mode.name, "mutants_per_sec", cs.MutantsPerSec,
				"tbs_compiled", cs.TBsCompiled)
			fmt.Printf("campaign %-19s %s: %8.0f mutants/sec  tbs_compiled=%-6d pool_hits=%-6d overlay=%d\n",
				mode.name, w.Name, cs.MutantsPerSec, cs.TBsCompiled, cs.PoolHits, cs.OverlayCompiles)
		}
		on, off := res.Campaign["pool-on"], res.Campaign["pool-off"]
		if on.TBsCompiled > 0 && off.MutantsPerSec > 0 {
			fmt.Printf("campaign pool-on/pool-off: %.2fx mutants/sec, %.1fx fewer TBs compiled\n",
				on.MutantsPerSec/off.MutantsPerSec,
				float64(off.TBsCompiled)/float64(on.TBsCompiled))
		}
	}
	res.AxisSeconds["campaign"] = time.Since(axisStart).Seconds()

	// Restore axis (E12): per-mutant rewind cost, page-granular dirty
	// tracking vs the watermark baseline, on a scattered-store workload
	// (where the baseline degenerates to near-full-RAM copies) and a
	// dense one (where pages must not regress throughput).
	axisStart = time.Now()
	if *restoreMutants > 0 {
		dw, ok := workloads.ByName(*restoreDense)
		if !ok {
			fmt.Fprintf(os.Stderr, "s4e-bench: unknown restore workload %q\n", *restoreDense)
			os.Exit(2)
		}
		res.Restore = map[string]restoreStats{}
		for _, arm := range []struct {
			key, workload, src string
			budget             uint64
		}{
			{"scatter", "scatter", scatterSource, scatterBudget},
			{"dense", dw.Name, dw.Source, dw.Budget},
		} {
			for _, pages := range []bool{true, false} {
				key := fmt.Sprintf("%s-%s", arm.key, map[bool]string{true: "pages", false: "watermark"}[pages])
				if *progress {
					fmt.Fprintf(os.Stderr, "s4e-bench: restore %s (%d mutants, %d reps)\n",
						key, *restoreMutants, *reps)
				}
				rs, err := measureRestore(arm.workload, arm.src, arm.budget, *restoreMutants, *reps, pages)
				if err != nil {
					fatal(err)
				}
				res.Restore[key] = rs
				tr.Emit("restore-measurement", "mode", key, "mutants_per_sec", rs.MutantsPerSec,
					"restore_bytes_per_mutant", rs.RestoreBytesPerMutant)
				fmt.Printf("restore %-18s %s: %8.0f mutants/sec  %10.0f B/mutant  %6.1f pages/mutant\n",
					key, rs.Workload, rs.MutantsPerSec, rs.RestoreBytesPerMutant, rs.RestorePagesPerMutant)
			}
		}
		sp, sw := res.Restore["scatter-pages"], res.Restore["scatter-watermark"]
		if sp.RestoreBytesPerMutant > 0 {
			fmt.Printf("restore scatter watermark/pages: %.1fx fewer bytes restored per mutant\n",
				sw.RestoreBytesPerMutant/sp.RestoreBytesPerMutant)
		}
		dp, dwm := res.Restore["dense-pages"], res.Restore["dense-watermark"]
		if dwm.MutantsPerSec > 0 {
			fmt.Printf("restore dense pages/watermark: %.2fx mutants/sec\n",
				dp.MutantsPerSec/dwm.MutantsPerSec)
		}
	}
	res.AxisSeconds["restore"] = time.Since(axisStart).Seconds()

	// Service axis: the same campaign work pushed through internal/serve
	// as concurrent jobs, across queue depths, pool sharing on vs off.
	axisStart = time.Now()
	if *svcJobs > 0 {
		w, ok := workloads.ByName(*svcWorkload)
		if !ok {
			fmt.Fprintf(os.Stderr, "s4e-bench: unknown service workload %q\n", *svcWorkload)
			os.Exit(2)
		}
		res.Service = map[string]serviceStats{}
		for _, depth := range []int{1, 8, 64} {
			for _, mode := range []struct {
				name   string
				noPool bool
			}{{"pool-on", false}, {"pool-off", true}} {
				key := fmt.Sprintf("q%d-%s", depth, mode.name)
				if *progress {
					fmt.Fprintf(os.Stderr, "s4e-bench: service %s (%d jobs, %d reps)\n",
						key, *svcJobs, *reps)
				}
				var best serviceStats
				for r := 0; r < *reps; r++ {
					ss, err := measureService(w, depth, *svcWorkers, *svcJobs, *svcMutants, mode.noPool)
					if err != nil {
						fatal(err)
					}
					if ss.JobsPerSec > best.JobsPerSec {
						best = ss
					}
				}
				res.Service[key] = best
				tr.Emit("service-measurement", "mode", key, "jobs_per_sec", best.JobsPerSec,
					"p99_ms", best.P99MS)
				fmt.Printf("service %-13s %s: %7.1f jobs/sec  p50=%6.1fms p99=%6.1fms shed=%-4d pool_hits=%d\n",
					key, w.Name, best.JobsPerSec, best.P50MS, best.P99MS, best.Shed, best.PoolHits)
			}
		}
		for _, depth := range []int{1, 8, 64} {
			on := res.Service[fmt.Sprintf("q%d-pool-on", depth)]
			off := res.Service[fmt.Sprintf("q%d-pool-off", depth)]
			if off.JobsPerSec > 0 {
				fmt.Printf("service q%-2d pool-on/pool-off: %.2fx jobs/sec\n",
					depth, on.JobsPerSec/off.JobsPerSec)
			}
		}
	}
	res.AxisSeconds["service"] = time.Since(axisStart).Seconds()

	// IRQ axis (E13): static IRT bound vs adversarially measured worst
	// interrupt-service latency per demonstrator, on the superblock
	// engine under the edge-small profile (the s4e-qta -irq defaults).
	axisStart = time.Now()
	if *irqSamples > 0 {
		res.IRQ = map[string]irqStats{}
		prof := timing.EdgeSmall()
		for _, w := range workloads.Interrupt() {
			if *progress {
				fmt.Fprintf(os.Stderr, "s4e-bench: irq %s (%d samples)\n", w.Name, *irqSamples)
			}
			start := time.Now()
			r, err := flow.RunIRT(context.Background(), w, prof, flow.IRTConfig{
				Engine: emu.EngineSuperblock, Samples: *irqSamples, Seed: 1,
			})
			if err != nil {
				fatal(err)
			}
			if !r.Sound {
				fatal(fmt.Errorf("irq axis: %s bound %d undercut by observed %d",
					w.Name, r.Static.Bound, r.Measured.MaxLatency))
			}
			st := irqStats{
				Workload: w.Name, Engine: emu.EngineSuperblock.String(),
				Bound: r.Static.Bound, MaxLatency: r.Measured.MaxLatency,
				Ratio: r.Ratio, Samples: *irqSamples, Delivered: r.Measured.Delivered,
				Sound:         r.Sound,
				SamplesPerSec: float64(*irqSamples) / time.Since(start).Seconds(),
			}
			res.IRQ[w.Name] = st
			tr.Emit("irq-measurement", "workload", w.Name, "bound", st.Bound,
				"observed_max", st.MaxLatency, "ratio", st.Ratio)
			fmt.Printf("irq %-12s bound %6d cycles  observed max %6d  ratio %.2f  (%d/%d delivered)\n",
				w.Name, st.Bound, st.MaxLatency, st.Ratio, st.Delivered, st.Samples)
		}
	}
	res.AxisSeconds["irq"] = time.Since(axisStart).Seconds()

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)

	if reg != nil {
		if err := reg.WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			fatal(err)
		}
	}
}

// geomeanRatio is the geometric mean of a[i]/b[i].
func geomeanRatio(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	prod := 1.0
	for i := range a {
		prod *= a[i] / b[i]
	}
	return math.Pow(prod, 1/float64(len(a)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-bench:", err)
	os.Exit(1)
}
