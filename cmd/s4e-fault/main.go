// Command s4e-fault runs a fault-injection campaign against an assembly
// program and prints the outcome classification table.
//
// Usage:
//
//	s4e-fault [-gpr 200] [-mem 100] [-code 100] [-workers N] [-seed S] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/vp"
)

func main() {
	gpr := flag.Int("gpr", 200, "transient register bit-flip count")
	gprPerm := flag.Int("gprperm", 0, "permanent (stuck-at) register fault count")
	mem := flag.Int("mem", 100, "permanent memory bit-flip count")
	code := flag.Int("code", 100, "instruction-word bit-flip count")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers")
	seed := flag.Int64("seed", 1, "fault plan seed")
	budget := flag.Uint64("budget", 10_000_000, "instruction budget per mutant")
	guided := flag.Bool("guided", false,
		"derive the plan from a coverage-instrumented golden run (targets only used registers and executed code)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-fault [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleAt(vp.Prelude+string(src), vp.RAMBase)
	if err != nil {
		fatal(err)
	}
	tg := &fault.Target{Program: prog, Budget: *budget}

	var plan fault.Plan
	var g *fault.Golden
	if *guided {
		cfg, golden, err := fault.GuidedPlanConfig(tg, *seed, *gpr)
		if err != nil {
			fatal(err)
		}
		g = golden
		fmt.Printf("guided plan: %d used registers, code 0x%08x..0x%08x\n",
			len(cfg.UsedRegs), cfg.CodeStart, cfg.CodeEnd)
		plan = fault.NewPlan(cfg)
	} else {
		golden, err := fault.RunGolden(tg)
		if err != nil {
			fatal(err)
		}
		g = golden
		end := vp.RAMBase + uint32(len(prog.Bytes))
		plan = fault.NewPlan(fault.PlanConfig{
			Seed:         *seed,
			GPRTransient: *gpr,
			GPRPermanent: *gprPerm,
			MemPermanent: *mem,
			CodeBitflip:  *code,
			GoldenInsts:  g.Insts,
			CodeStart:    vp.RAMBase,
			CodeEnd:      end,
			DataStart:    vp.RAMBase,
			DataEnd:      end,
		})
	}
	fmt.Printf("golden: %v, %d instructions\n", g.Stop, g.Insts)
	start := time.Now()
	res, err := fault.Campaign(tg, plan, *workers)
	if err != nil {
		fatal(err)
	}
	d := time.Since(start)
	fmt.Print(res)
	fmt.Printf("%d mutants in %v (%.0f mutants/sec, %d workers)\n",
		res.Total, d.Round(time.Millisecond), float64(res.Total)/d.Seconds(), *workers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-fault:", err)
	os.Exit(1)
}
