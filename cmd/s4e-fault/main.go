// Command s4e-fault runs a fault-injection campaign against an assembly
// program and prints the outcome classification table.
//
// Usage:
//
//	s4e-fault [-gpr 200] [-mem 100] [-code 100] [-workers N] [-seed S]
//	          [-engine threaded] [-pool=true] prog.s
//
// Exit status: 0 on a clean campaign, 1 on runtime failure, 2 on usage
// error. Mutants the harness cannot run are reported as "errored" in
// the table; the campaign still completes and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vp"
)

func main() {
	gpr := flag.Int("gpr", 200, "transient register bit-flip count")
	gprPerm := flag.Int("gprperm", 0, "permanent (stuck-at) register fault count")
	mem := flag.Int("mem", 100, "permanent memory bit-flip count")
	code := flag.Int("code", 100, "instruction-word bit-flip count")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers")
	seed := flag.Int64("seed", 1, "fault plan seed")
	budget := flag.Uint64("budget", 10_000_000, "instruction budget per mutant")
	engName := flag.String("engine", "threaded",
		"execution engine: "+strings.Join(emu.EngineNames(), ", "))
	pool := flag.Bool("pool", true,
		"share the golden run's compiled translation pool across workers (false: each worker cold-compiles privately)")
	guided := flag.Bool("guided", false,
		"derive the plan from a coverage-instrumented golden run (targets only used registers and executed code)")
	metricsPath := flag.String("metrics", "", "write campaign and engine metrics to `file` after the run (.json for JSON, - for stdout, else Prometheus text)")
	tracePath := flag.String("trace", "", "write per-mutant trace events (JSONL) to `file`")
	progress := flag.Bool("progress", false, "print a live campaign progress line to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-fault [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleAt(vp.Prelude+string(src), vp.RAMBase)
	if err != nil {
		fatal(err)
	}
	tg := &fault.Target{Program: prog, Budget: *budget}
	engine, err := emu.ParseEngine(*engName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s4e-fault:", err)
		os.Exit(2)
	}
	tg.Engine = engine

	var plan fault.Plan
	var g *fault.Golden
	if *guided {
		cfg, golden, err := fault.GuidedPlanConfig(tg, *seed, *gpr)
		if err != nil {
			fatal(err)
		}
		g = golden
		fmt.Printf("guided plan: %d used registers, code 0x%08x..0x%08x\n",
			len(cfg.UsedRegs), cfg.CodeStart, cfg.CodeEnd)
		plan = fault.NewPlan(cfg)
	} else {
		golden, err := fault.RunGolden(tg)
		if err != nil {
			fatal(err)
		}
		g = golden
		end := vp.RAMBase + uint32(len(prog.Bytes))
		plan = fault.NewPlan(fault.PlanConfig{
			Seed:         *seed,
			GPRTransient: *gpr,
			GPRPermanent: *gprPerm,
			MemPermanent: *mem,
			CodeBitflip:  *code,
			GoldenInsts:  g.Insts,
			CodeStart:    vp.RAMBase,
			CodeEnd:      end,
			DataStart:    vp.RAMBase,
			DataEnd:      end,
		})
	}
	fmt.Printf("golden: %v, %d instructions\n", g.Stop, g.Insts)

	opts := fault.Options{Workers: *workers, NoSharedPool: !*pool}
	if *metricsPath != "" {
		opts.Metrics = obs.NewRegistry()
	}
	var closeTrace func() error
	if *tracePath != "" {
		opts.Trace, closeTrace, err = obs.NewFileTrace(*tracePath, obs.DefaultRing)
		if err != nil {
			fatal(err)
		}
	}
	if *progress {
		opts.Progress = os.Stderr
	}

	res, err := fault.CampaignOpt(tg, plan, opts)
	if res == nil {
		fatal(err)
	}
	fmt.Print(res)
	poolState := "shared pool"
	if !*pool {
		poolState = "private caches"
	}
	fmt.Printf("%d mutants in %v (%.0f mutants/sec, %d workers, %s engine, %s)\n",
		res.Total, res.Duration.Round(time.Millisecond),
		float64(res.Total)/res.Duration.Seconds(), *workers, *engName, poolState)

	if opts.Metrics != nil {
		if werr := opts.Metrics.WriteFile(*metricsPath); werr != nil {
			fatal(werr)
		}
	}
	if closeTrace != nil {
		if werr := closeTrace(); werr != nil {
			fatal(werr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "s4e-fault: %d mutants errored:\n%v\n", res.Errored(), err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-fault:", err)
	os.Exit(1)
}
