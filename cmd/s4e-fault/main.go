// Command s4e-fault runs a fault-injection campaign against an assembly
// program and prints the outcome classification table.
//
// Usage:
//
//	s4e-fault [-gpr 200] [-mem 100] [-code 100] [-workers N] [-seed S]
//	          [-engine threaded] [-pool=true] prog.s
//	s4e-fault -workload pid_timer -isr handler -latency 3000 [flags]
//
// The second form campaigns against a built-in workload (the interrupt
// demonstrators bring their own device stimuli); -isr concentrates the
// plan on the named handler's code and the ISR stack window, and
// -latency classifies benign mutants that blow the cycle budget for
// interrupt service as latency violations.
//
// Exit status: 0 on a clean campaign, 1 on runtime failure, 2 on usage
// error. Mutants the harness cannot run are reported as "errored" in
// the table; the campaign still completes and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vp"
	"repro/internal/workloads"
)

func main() {
	gpr := flag.Int("gpr", 200, "transient register bit-flip count")
	gprPerm := flag.Int("gprperm", 0, "permanent (stuck-at) register fault count")
	mem := flag.Int("mem", 100, "permanent memory bit-flip count")
	code := flag.Int("code", 100, "instruction-word bit-flip count")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers")
	seed := flag.Int64("seed", 1, "fault plan seed")
	budget := flag.Uint64("budget", 10_000_000, "instruction budget per mutant")
	engName := flag.String("engine", "threaded",
		"execution engine: "+strings.Join(emu.EngineNames(), ", "))
	pool := flag.Bool("pool", true,
		"share the golden run's compiled translation pool across workers (false: each worker cold-compiles privately)")
	guided := flag.Bool("guided", false,
		"derive the plan from a coverage-instrumented golden run (targets only used registers and executed code)")
	metricsPath := flag.String("metrics", "", "write campaign and engine metrics to `file` after the run (.json for JSON, - for stdout, else Prometheus text)")
	tracePath := flag.String("trace", "", "write per-mutant trace events (JSONL) to `file`")
	progress := flag.Bool("progress", false, "print a live campaign progress line to stderr")
	workloadName := flag.String("workload", "",
		"campaign against a built-in workload instead of a source file (the interrupt demonstrators pid_timer, dma_stream, uart_cmd bring their own stimuli and budget)")
	isr := flag.String("isr", "",
		"target the plan at the interrupt handler rooted at this `symbol`: code flips land in the handler, memory faults in the ISR stack window")
	latency := flag.Uint64("latency", 0,
		"interrupt-service latency budget in `cycles`: benign mutants exceeding it classify latency-viol (0 disables)")
	flag.Parse()
	budgetSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "budget" {
			budgetSet = true
		}
	})
	if *guided && *isr != "" {
		fmt.Fprintln(os.Stderr, "s4e-fault: -guided and -isr are mutually exclusive")
		os.Exit(2)
	}

	var src string
	var w workloads.Workload
	switch {
	case *workloadName != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: s4e-fault -workload name [flags]  (no source file)")
			os.Exit(2)
		}
		var ok bool
		w, ok = workloads.ByName(*workloadName)
		if !ok {
			fmt.Fprintf(os.Stderr, "s4e-fault: unknown workload %q\n", *workloadName)
			os.Exit(2)
		}
		src = w.Source
		if !budgetSet {
			*budget = w.Budget
		}
		if *isr == "" && w.Handler != "" {
			*isr = w.Handler
		}
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: s4e-fault [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prog, err := asm.AssembleAt(vp.Prelude+src, vp.RAMBase)
	if err != nil {
		fatal(err)
	}
	tg := &fault.Target{
		Program: prog, Budget: *budget,
		Sensor: w.Sensor, Stream: w.Stream, UARTIn: w.UARTIn,
		LatencyBudget: *latency,
	}
	engine, err := emu.ParseEngine(*engName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s4e-fault:", err)
		os.Exit(2)
	}
	tg.Engine = engine

	var plan fault.Plan
	var g *fault.Golden
	if *isr != "" {
		golden, err := fault.RunGolden(tg)
		if err != nil {
			fatal(err)
		}
		g = golden
		plan, err = fault.NewISRPlan(prog, *isr, fault.ISRPlanConfig{
			Seed:         *seed,
			GPRTransient: *gpr,
			GPRPermanent: *gprPerm,
			MemPermanent: *mem,
			CodeBitflip:  *code,
			GoldenInsts:  g.Insts,
			StackTop:     tg.StackTop(),
		})
		if err != nil {
			fatal(err)
		}
		start, end, _ := fault.ISRRegion(prog, *isr)
		fmt.Printf("isr plan: handler %s code 0x%08x..0x%08x, stack window 64 bytes below 0x%08x\n",
			*isr, start, end, tg.StackTop())
	} else if *guided {
		cfg, golden, err := fault.GuidedPlanConfig(tg, *seed, *gpr)
		if err != nil {
			fatal(err)
		}
		g = golden
		fmt.Printf("guided plan: %d used registers, code 0x%08x..0x%08x\n",
			len(cfg.UsedRegs), cfg.CodeStart, cfg.CodeEnd)
		plan = fault.NewPlan(cfg)
	} else {
		golden, err := fault.RunGolden(tg)
		if err != nil {
			fatal(err)
		}
		g = golden
		end := vp.RAMBase + uint32(len(prog.Bytes))
		plan = fault.NewPlan(fault.PlanConfig{
			Seed:         *seed,
			GPRTransient: *gpr,
			GPRPermanent: *gprPerm,
			MemPermanent: *mem,
			CodeBitflip:  *code,
			GoldenInsts:  g.Insts,
			CodeStart:    vp.RAMBase,
			CodeEnd:      end,
			DataStart:    vp.RAMBase,
			DataEnd:      end,
		})
	}
	fmt.Printf("golden: %v, %d instructions\n", g.Stop, g.Insts)

	opts := fault.Options{Workers: *workers, NoSharedPool: !*pool}
	if *metricsPath != "" {
		opts.Metrics = obs.NewRegistry()
	}
	var closeTrace func() error
	if *tracePath != "" {
		opts.Trace, closeTrace, err = obs.NewFileTrace(*tracePath, obs.DefaultRing)
		if err != nil {
			fatal(err)
		}
	}
	if *progress {
		opts.Progress = os.Stderr
	}

	res, err := fault.CampaignOpt(tg, plan, opts)
	if res == nil {
		fatal(err)
	}
	fmt.Print(res)
	poolState := "shared pool"
	if !*pool {
		poolState = "private caches"
	}
	fmt.Printf("%d mutants in %v (%.0f mutants/sec, %d workers, %s engine, %s)\n",
		res.Total, res.Duration.Round(time.Millisecond),
		float64(res.Total)/res.Duration.Seconds(), *workers, *engName, poolState)

	if opts.Metrics != nil {
		if werr := opts.Metrics.WriteFile(*metricsPath); werr != nil {
			fatal(werr)
		}
	}
	if closeTrace != nil {
		if werr := closeTrace(); werr != nil {
			fatal(werr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "s4e-fault: %d mutants errored:\n%v\n", res.Errored(), err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-fault:", err)
	os.Exit(1)
}
