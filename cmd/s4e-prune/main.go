// Command s4e-prune runs the whole-binary ISA-subset and
// resource-usage analyzer over an assembly program: it closes the
// interprocedural CFG (resolving constant indirect jumps), then reports
// the exact opcode and extension-group set the binary can execute, the
// integer register footprint and RV32E feasibility, the CSR footprint,
// and a worst-case call-depth/stack-depth bound. The opcode set is the
// allowlist a subset-specialized core (or emu.Machine.SetSubset) needs
// to run the program.
//
// Usage:
//
//	s4e-prune [-rvc] [-json] [-funcs] prog.s
//
// -funcs adds a per-function breakdown; -json emits the full report as
// one JSON document.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/subset"
	"repro/internal/vp"
)

func main() {
	compress := flag.Bool("rvc", false, "analyze the RVC-compressed build")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	funcs := flag.Bool("funcs", false, "print a per-function breakdown")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-prune [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleAtOpt(vp.Prelude+string(src), vp.RAMBase,
		asm.Options{Compress: *compress})
	if err != nil {
		fatal(err)
	}
	symbols := map[uint32]string{}
	for name, addr := range prog.Symbols {
		symbols[addr] = name
	}
	rep, err := subset.Analyze(prog.Bytes, prog.Org, prog.Entry, symbols)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(rep)
	if *funcs {
		for _, f := range rep.Funcs {
			name := f.Name
			if name == "" {
				name = fmt.Sprintf("0x%08x", f.Entry)
			}
			fmt.Printf("\nfunction %s (0x%08x)\n", name, f.Entry)
			fmt.Printf("  insts  %d\n", f.Insts)
			fmt.Printf("  groups %v\n", f.Groups)
			fmt.Printf("  regs   %v\n", f.Regs)
			if len(f.CSRs) > 0 {
				fmt.Printf("  csrs   %v\n", f.CSRs)
			}
			switch {
			case f.Recursive:
				fmt.Printf("  stack  unbounded (recursive)\n")
			case f.FrameKnown:
				fmt.Printf("  stack  frame %d bytes, subtree %d bytes, depth %d\n",
					f.FrameBytes, f.StackBytes, f.CallDepth)
			default:
				fmt.Printf("  stack  frame unknown (non-constant sp adjustment)\n")
			}
			for _, c := range f.Callees {
				cname := symbols[c]
				if cname == "" {
					cname = fmt.Sprintf("0x%08x", c)
				}
				fmt.Printf("  calls  %s\n", cname)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-prune:", err)
	os.Exit(1)
}
