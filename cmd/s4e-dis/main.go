// Command s4e-dis disassembles an ELF32 RISC-V executable (or a flat
// image with -org), objdump style, annotating symbol locations.
//
// Usage:
//
//	s4e-dis prog.elf
//	s4e-dis -flat -org 0x80000000 prog.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/decode"
	"repro/internal/elf"
)

func main() {
	flat := flag.Bool("flat", false, "input is a flat binary image")
	org := flag.Uint64("org", 0x8000_0000, "load address for flat images")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-dis [-flat -org addr] prog.{elf,bin}")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var segs []elf.Segment
	symbols := map[uint32][]string{}
	if *flat {
		segs = []elf.Segment{{Addr: uint32(*org), Data: data}}
	} else {
		img, err := elf.Read(data)
		if err != nil {
			fatal(err)
		}
		segs = img.Segments
		for name, addr := range img.Symbols {
			symbols[addr] = append(symbols[addr], name)
		}
		for _, names := range symbols {
			sort.Strings(names)
		}
		fmt.Printf("entry: 0x%08x\n", img.Entry)
	}

	for _, seg := range segs {
		fmt.Printf("\nsegment 0x%08x (%d bytes):\n", seg.Addr, len(seg.Data))
		disassemble(seg, symbols)
	}
}

func disassemble(seg elf.Segment, symbols map[uint32][]string) {
	addr := seg.Addr
	for off := 0; off+2 <= len(seg.Data); {
		for _, name := range symbols[addr] {
			fmt.Printf("%s:\n", name)
		}
		lo := binary.LittleEndian.Uint16(seg.Data[off:])
		var in decode.Inst
		var raw string
		if decode.IsCompressed(lo) {
			in = decode.Decode16(lo)
			raw = fmt.Sprintf("    %04x", lo)
		} else {
			if off+4 > len(seg.Data) {
				fmt.Printf("%08x: %04x          .half\n", addr, lo)
				return
			}
			word := uint32(lo) | uint32(binary.LittleEndian.Uint16(seg.Data[off+2:]))<<16
			in = decode.Decode32(word)
			raw = fmt.Sprintf("%08x", word)
		}
		text := in.String()
		if tgt, ok := in.Target(addr); ok {
			if names := symbols[tgt]; len(names) > 0 {
				text += fmt.Sprintf("  <%s>", names[0])
			} else {
				text += fmt.Sprintf("  <0x%08x>", tgt)
			}
		}
		fmt.Printf("%08x: %s  %s\n", addr, raw, text)
		off += int(in.Size)
		addr += uint32(in.Size)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-dis:", err)
	os.Exit(1)
}
