// Command s4e-lint runs the guest-binary linter over an assembly
// program: dataflow-backed checks for uninitialized register reads,
// unreachable code, dead stores, out-of-map and misaligned accesses,
// self-modifying stores without fence.i, and unbounded loops.
//
// Usage:
//
//	s4e-lint [-bounds loop=32] [-min possible] [-fail definite] [-json] prog.s
//
// With -json the findings (after -min filtering) are emitted as one
// JSON document on stdout for machine consumption. The exit code is 1
// when a finding at or above the -fail severity is present, 0
// otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/flow"
	"repro/internal/lint"
	"repro/internal/vp"
)

func parseBounds(s string) (map[string]int, error) {
	out := map[string]int{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad bound %q (want label=N)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad bound count %q", kv[1])
		}
		out[strings.TrimSpace(kv[0])] = n
	}
	return out, nil
}

func parseSeverity(s string) (lint.Severity, error) {
	switch s {
	case "info":
		return lint.Info, nil
	case "possible":
		return lint.Possible, nil
	case "definite":
		return lint.Definite, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, possible or definite)", s)
}

func main() {
	boundsFlag := flag.String("bounds", "", "loop bounds: label=N,label=N,...")
	minFlag := flag.String("min", "info", "lowest severity to report")
	failFlag := flag.String("fail", "definite", "lowest severity that fails the run")
	compress := flag.Bool("rvc", false, "lint the RVC-compressed build")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s4e-lint [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	minSev, err := parseSeverity(*minFlag)
	if err != nil {
		usage(err)
	}
	failSev, err := parseSeverity(*failFlag)
	if err != nil {
		usage(err)
	}
	bounds, err := parseBounds(*boundsFlag)
	if err != nil {
		usage(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleAtOpt(vp.Prelude+string(src), vp.RAMBase,
		asm.Options{Compress: *compress})
	if err != nil {
		fatal(err)
	}
	findings, err := flow.LintProgram(prog, bounds)
	if err != nil {
		fatal(err)
	}
	// Report line numbers relative to the user's file, not the
	// prepended platform prelude.
	preludeOff := strings.Count(vp.Prelude, "\n")
	type jsonFinding struct {
		Check    string `json:"check"`
		Severity string `json:"severity"`
		Addr     uint32 `json:"addr"`
		Line     int    `json:"line,omitempty"`
		Msg      string `json:"msg"`
	}
	var jfs []jsonFinding
	reported, failing := 0, 0
	for _, f := range findings {
		if f.Line > preludeOff {
			f.Line -= preludeOff
		}
		if f.Severity >= failSev {
			failing++
		}
		if f.Severity >= minSev {
			reported++
			if *jsonOut {
				jfs = append(jfs, jsonFinding{
					Check: f.Check, Severity: f.Severity.String(),
					Addr: f.Addr, Line: f.Line, Msg: f.Msg,
				})
			} else {
				fmt.Printf("%s: %s\n", flag.Arg(0), f)
			}
		}
	}
	if *jsonOut {
		doc := struct {
			File     string        `json:"file"`
			Findings []jsonFinding `json:"findings"`
			Total    int           `json:"total"`
			Failing  int           `json:"failing"`
		}{flag.Arg(0), jfs, len(findings), failing}
		if doc.Findings == nil {
			doc.Findings = []jsonFinding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%s: %d findings (%d reported, %d at fail level)\n",
			flag.Arg(0), len(findings), reported, failing)
	}
	if failing > 0 {
		os.Exit(1)
	}
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "s4e-lint:", err)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-lint:", err)
	os.Exit(1)
}
