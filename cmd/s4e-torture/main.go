// Command s4e-torture generates random terminating RISC-V test programs.
//
// Usage:
//
//	s4e-torture [-n 10] [-insts 300] [-isa rv32imf] [-seed S] [-dir out/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/isa"
	"repro/internal/torture"
)

func main() {
	n := flag.Int("n", 10, "number of programs")
	insts := flag.Int("insts", 300, "body instructions per program")
	isaName := flag.String("isa", "rv32im", "ISA configuration")
	seed := flag.Int64("seed", 1, "base seed")
	dir := flag.String("dir", "", "output directory (default: stdout, first program only)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: s4e-torture [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var set isa.ExtSet
	switch *isaName {
	case "rv32i":
		set = isa.RV32I
	case "rv32im":
		set = isa.RV32IM
	case "rv32imf":
		set = isa.RV32IMF
	case "rv32imb":
		set = isa.RV32IMB
	case "full":
		set = isa.RV32Full
	default:
		fmt.Fprintf(os.Stderr, "s4e-torture: unknown ISA %q\n", *isaName)
		os.Exit(2)
	}

	if *dir == "" {
		p := torture.Generate(torture.Config{Seed: *seed, Insts: *insts, ISA: set})
		fmt.Print(p.Source)
		return
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for i := 0; i < *n; i++ {
		p := torture.Generate(torture.Config{Seed: *seed + int64(i), Insts: *insts, ISA: set})
		name := filepath.Join(*dir, fmt.Sprintf("torture-%04d.s", i))
		if err := os.WriteFile(name, []byte(p.Source), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d programs to %s\n", *n, *dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s4e-torture:", err)
	os.Exit(1)
}
