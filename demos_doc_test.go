package repro

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// shBlock is one fenced ```sh block lifted from a markdown document.
type shBlock struct {
	line int // 1-based line of the opening fence
	text string
}

// shBlocks extracts every fenced sh block from a markdown file.
func shBlocks(t *testing.T, path string) []shBlock {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []shBlock
	var cur *shBlock
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case cur == nil && strings.TrimSpace(line) == "```sh":
			cur = &shBlock{line: i + 1}
		case cur != nil && strings.TrimSpace(line) == "```":
			blocks = append(blocks, *cur)
			cur = nil
		case cur != nil:
			cur.text += line + "\n"
		}
	}
	if cur != nil {
		t.Fatalf("%s: unterminated fence opened at line %d", path, cur.line)
	}
	return blocks
}

// TestDemonstratorDocs executes every fenced sh block in
// docs/DEMONSTRATORS.md with freshly built tools on PATH, so the
// walkthrough cannot drift from the CLIs it documents. Blocks run
// under `sh -e` from the repository root; a failing command fails the
// block's subtest with the script and its output.
func TestDemonstratorDocs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	blocks := shBlocks(t, filepath.Join("docs", "DEMONSTRATORS.md"))
	if len(blocks) == 0 {
		t.Fatal("docs/DEMONSTRATORS.md has no fenced sh blocks")
	}
	for _, b := range blocks {
		t.Run(fmt.Sprintf("line-%03d", b.line), func(t *testing.T) {
			cmd := exec.Command("sh", "-e", "-c", b.text)
			cmd.Env = append(os.Environ(),
				"PATH="+bin+string(os.PathListSeparator)+os.Getenv("PATH"))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("block at line %d failed: %v\nscript:\n%s\noutput:\n%s",
					b.line, err, b.text, out)
			}
		})
	}
}

// TestExamplesRun executes every example program under examples/ and
// asserts a clean exit, keeping the runnable documentation in sync
// with the packages it demonstrates.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+e.Name())
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
