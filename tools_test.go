package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every command once into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	tools := []string{
		"s4e-asm", "s4e-dis", "s4e-run", "s4e-cfg", "s4e-wcet", "s4e-qta",
		"s4e-cov", "s4e-fault", "s4e-torture", "s4e-experiments", "s4e-bench",
		"s4e-lint", "s4e-serve", "s4e-prune",
	}
	for _, tool := range tools {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func runTool(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), code
}

const taskSource = `
_start:
	li a0, 0
	li a1, 16
loop:	add a0, a0, a1
	addi a1, a1, -1
	bnez a1, loop
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
`

// TestToolchainEndToEnd drives the binaries the way the README shows:
// assemble, run, analyze, co-simulate, generate, qualify.
func TestToolchainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "task.s")
	if err := os.WriteFile(src, []byte(taskSource), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("asm+run-elf", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-asm"), "-o", filepath.Join(work, "task.elf"), src)
		if code != 0 {
			t.Fatalf("s4e-asm: %s", out)
		}
		// sum(1..16) = 136; s4e-run forwards the exit code (mod 128).
		out, code = runTool(t, filepath.Join(bin, "s4e-run"), filepath.Join(work, "task.elf"))
		if code != 136&0x7f {
			t.Fatalf("s4e-run exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "insts:") {
			t.Errorf("stats missing:\n%s", out)
		}
	})

	t.Run("disassemble", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-dis"), filepath.Join(work, "task.elf"))
		if code != 0 {
			t.Fatalf("s4e-dis (%d):\n%s", code, out)
		}
		for _, frag := range []string{"_start:", "loop:", "bne a1, zero", "<loop>"} {
			if !strings.Contains(out, frag) {
				t.Errorf("disassembly missing %q:\n%s", frag, out)
			}
		}
	})

	t.Run("run-source-with-trace", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-run"), "-itrace", "-profile", "edge-small", src)
		if code != 136&0x7f {
			t.Fatalf("exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "add a0, a0, a1") {
			t.Errorf("trace missing:\n%s", out)
		}
	})

	t.Run("run-metrics-and-events", func(t *testing.T) {
		metrics := filepath.Join(work, "run-metrics.txt")
		events := filepath.Join(work, "run-events.jsonl")
		out, code := runTool(t, filepath.Join(bin, "s4e-run"),
			"-metrics", metrics, "-trace", events, src)
		if code != 136&0x7f {
			t.Fatalf("exit %d:\n%s", code, out)
		}
		data, err := os.ReadFile(metrics)
		if err != nil {
			t.Fatal(err)
		}
		for _, frag := range []string{"s4e_emu_tbs_compiled_total", "s4e_emu_jump_cache_hit_rate", "s4e_bus_fetches_total"} {
			if !strings.Contains(string(data), frag) {
				t.Errorf("metrics file missing %q:\n%s", frag, data)
			}
		}
		ev, err := os.ReadFile(events)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(ev), `"run-start"`) || !strings.Contains(string(ev), `"run-end"`) {
			t.Errorf("event trace missing run framing:\n%s", ev)
		}
	})

	t.Run("exit-codes", func(t *testing.T) {
		// A guest exit code that is a nonzero multiple of 128 must not
		// collapse to success under the 7-bit mask.
		wrap := filepath.Join(work, "wrap.s")
		prog := "_start:\n\tli a0, 128\n\tli t6, SYSCON_EXIT\n\tsw a0, 0(t6)\n1:\tj 1b\n"
		if err := os.WriteFile(wrap, []byte(prog), 0o644); err != nil {
			t.Fatal(err)
		}
		out, code := runTool(t, filepath.Join(bin, "s4e-run"), wrap)
		if code != 1 {
			t.Errorf("guest exit 128: host exit %d, want 1:\n%s", code, out)
		}
		// Usage errors (bad flag values) exit 2, runtime failures exit 1.
		if _, code := runTool(t, filepath.Join(bin, "s4e-run"), "-profile", "nope", src); code != 2 {
			t.Errorf("bad -profile: exit %d, want 2", code)
		}
		if _, code := runTool(t, filepath.Join(bin, "s4e-run"), "-engine", "nope", src); code != 2 {
			t.Errorf("bad -engine: exit %d, want 2", code)
		}
		if _, code := runTool(t, filepath.Join(bin, "s4e-qta"), "-profile", "nope", src); code != 2 {
			t.Errorf("s4e-qta bad -profile: exit %d, want 2", code)
		}
		if _, code := runTool(t, filepath.Join(bin, "s4e-wcet"), "-bounds", "garbage", src); code != 2 {
			t.Errorf("s4e-wcet bad -bounds: exit %d, want 2", code)
		}
		if _, code := runTool(t, filepath.Join(bin, "s4e-lint"), "-min", "nope", src); code != 2 {
			t.Errorf("s4e-lint bad -min: exit %d, want 2", code)
		}
		if _, code := runTool(t, filepath.Join(bin, "s4e-torture"), "-isa", "nope"); code != 2 {
			t.Errorf("s4e-torture bad -isa: exit %d, want 2", code)
		}
		if _, code := runTool(t, filepath.Join(bin, "s4e-run"), filepath.Join(work, "missing.s")); code != 1 {
			t.Errorf("missing input: exit %d, want 1", code)
		}
	})

	t.Run("wcet+qta", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-wcet"),
			"-bounds", "loop=16", "-profile", "edge-small", src)
		if code != 0 || !strings.Contains(out, "WCET bound:") {
			t.Fatalf("s4e-wcet (%d):\n%s", code, out)
		}
		out, code = runTool(t, filepath.Join(bin, "s4e-qta"), "-profile", "edge-small",
			"-blockprofile", src)
		if code != 0 {
			t.Fatalf("s4e-qta (%d):\n%s", code, out)
		}
		if !strings.Contains(out, "sound: true") {
			t.Errorf("qta not sound:\n%s", out)
		}
		if !strings.Contains(out, "visits") {
			t.Errorf("block profile missing:\n%s", out)
		}
	})

	t.Run("cfg-dot", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-cfg"), src)
		if code != 0 || !strings.Contains(out, "digraph cfg") {
			t.Fatalf("s4e-cfg (%d):\n%s", code, out)
		}
		out, code = runTool(t, filepath.Join(bin, "s4e-cfg"),
			"-annotate", "-bounds", "loop=16", src)
		if code != 0 || !strings.Contains(out, "loop head (depth 1): bound 16 (user)") {
			t.Fatalf("s4e-cfg -annotate (%d):\n%s", code, out)
		}
	})

	t.Run("lint", func(t *testing.T) {
		// The task program is clean at the definite level; its trailing
		// spin loop is reported as a possible finding only.
		out, code := runTool(t, filepath.Join(bin, "s4e-lint"), "-bounds", "loop=16", src)
		if code != 0 {
			t.Fatalf("s4e-lint on clean program (%d):\n%s", code, out)
		}
		if !strings.Contains(out, "findings") {
			t.Errorf("summary missing:\n%s", out)
		}

		buggy := filepath.Join(work, "buggy.s")
		if err := os.WriteFile(buggy, []byte("\tadd a0, a1, a2\n\tebreak\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out, code = runTool(t, filepath.Join(bin, "s4e-lint"), buggy)
		if code != 1 {
			t.Fatalf("s4e-lint on buggy program: exit %d, want 1:\n%s", code, out)
		}
		if !strings.Contains(out, "uninit-read") {
			t.Errorf("uninit-read finding missing:\n%s", out)
		}

		// Machine-readable output: same failing program, JSON document.
		out, code = runTool(t, filepath.Join(bin, "s4e-lint"), "-json", buggy)
		if code != 1 {
			t.Fatalf("s4e-lint -json: exit %d, want 1:\n%s", code, out)
		}
		if !strings.Contains(out, `"check": "uninit-read"`) || !strings.Contains(out, `"failing"`) {
			t.Errorf("JSON findings missing:\n%s", out)
		}
	})

	t.Run("prune", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-prune"), "-funcs", src)
		if code != 0 {
			t.Fatalf("s4e-prune (%d):\n%s", code, out)
		}
		for _, want := range []string{"extensions", "rv32e", "stack bound", "sound       yes"} {
			if !strings.Contains(out, want) {
				t.Errorf("report missing %q:\n%s", want, out)
			}
		}
		out, code = runTool(t, filepath.Join(bin, "s4e-prune"), "-json", src)
		if code != 0 || !strings.Contains(out, `"sound": true`) {
			t.Fatalf("s4e-prune -json (%d):\n%s", code, out)
		}
	})

	t.Run("torture-roundtrip", func(t *testing.T) {
		dir := filepath.Join(work, "torture")
		out, code := runTool(t, filepath.Join(bin, "s4e-torture"), "-n", "2", "-dir", dir)
		if code != 0 {
			t.Fatalf("s4e-torture (%d):\n%s", code, out)
		}
		prog := filepath.Join(dir, "torture-0000.s")
		out, code = runTool(t, filepath.Join(bin, "s4e-run"), prog)
		if strings.Contains(out, "unhandled trap") {
			t.Errorf("torture program trapped:\n%s", out)
		}
	})

	t.Run("coverage-of-file", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-cov"), "-isa", "rv32im", "-missing", src)
		if code != 0 || !strings.Contains(out, "insn types") {
			t.Fatalf("s4e-cov (%d):\n%s", code, out)
		}
		out, code = runTool(t, filepath.Join(bin, "s4e-cov"), "-isa", "rv32im", "-ext", src)
		if code != 0 || !strings.Contains(out, "M ") {
			t.Fatalf("s4e-cov -ext missing group rows (%d):\n%s", code, out)
		}
	})

	t.Run("fault-campaign", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-fault"),
			"-gpr", "20", "-mem", "5", "-code", "5", src)
		if code != 0 {
			t.Fatalf("s4e-fault (%d):\n%s", code, out)
		}
		if !strings.Contains(out, "masked") || !strings.Contains(out, "mutants/sec") {
			t.Errorf("campaign output:\n%s", out)
		}

		metrics := filepath.Join(work, "fault-metrics.txt")
		out, code = runTool(t, filepath.Join(bin, "s4e-fault"),
			"-gpr", "10", "-mem", "2", "-code", "2", "-workers", "2",
			"-metrics", metrics, "-progress", src)
		if code != 0 {
			t.Fatalf("s4e-fault -metrics (%d):\n%s", code, out)
		}
		if !strings.Contains(out, "fault: ") || !strings.Contains(out, "(100.0%)") {
			t.Errorf("live progress line missing:\n%s", out)
		}
		data, err := os.ReadFile(metrics)
		if err != nil {
			t.Fatal(err)
		}
		for _, frag := range []string{
			`s4e_fault_mutants_total{outcome="masked"}`,
			"s4e_fault_mutants_per_sec",
			"s4e_emu_jump_cache_hit_rate",
		} {
			if !strings.Contains(string(data), frag) {
				t.Errorf("fault metrics missing %q:\n%s", frag, data)
			}
		}
	})

	t.Run("bench-json", func(t *testing.T) {
		dst := filepath.Join(work, "bench.json")
		out, code := runTool(t, filepath.Join(bin, "s4e-bench"),
			"-o", dst, "-reps", "1", "-workloads", "xtea")
		if code != 0 {
			t.Fatalf("s4e-bench (%d):\n%s", code, out)
		}
		data, err := os.ReadFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		for _, frag := range []string{`"threaded"`, `"switch"`, `"no-tb-cache"`, `"xtea"`} {
			if !strings.Contains(string(data), frag) {
				t.Errorf("bench JSON missing %q:\n%s", frag, data)
			}
		}
	})

	t.Run("experiments-e1", func(t *testing.T) {
		out, code := runTool(t, filepath.Join(bin, "s4e-experiments"), "-exp", "e1")
		if code != 0 || !strings.Contains(out, "component inventory") {
			t.Fatalf("s4e-experiments (%d):\n%s", code, out)
		}
	})

	t.Run("error-paths", func(t *testing.T) {
		if _, code := runTool(t, filepath.Join(bin, "s4e-asm"), filepath.Join(work, "missing.s")); code == 0 {
			t.Error("missing input should fail")
		}
		bad := filepath.Join(work, "bad.s")
		os.WriteFile(bad, []byte("bogus a0\n"), 0o644)
		if out, code := runTool(t, filepath.Join(bin, "s4e-asm"), bad); code == 0 {
			t.Errorf("bad assembly should fail:\n%s", out)
		}
	})
}
