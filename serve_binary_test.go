package repro

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe launches one s4e-serve process and parses the resolved
// listen address out of its stderr banner. It returns the process, the
// API base URL, the accumulating stderr tail, and a channel closed when
// stderr reaches EOF (wait on it before calling cmd.Wait).
func startServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *strings.Builder, chan struct{}) {
	t.Helper()
	srv := exec.Command(bin, args...)
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Process.Kill() }) //nolint:errcheck // backstop; normally exited

	// The first stderr line carries the resolved listen address (the
	// journal banner, when present, comes before it on a restart).
	rd := bufio.NewReader(stderr)
	const marker = "listening on "
	var addr string
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("reading banner: %v", err)
		}
		if i := strings.Index(line, marker); i >= 0 {
			addr = strings.Fields(line[i+len(marker):])[0]
			break
		}
	}
	tail := &strings.Builder{}
	copied := make(chan struct{})
	go func() {
		defer close(copied)
		io.Copy(tail, rd) //nolint:errcheck // best-effort drain
	}()
	return srv, "http://" + addr, tail, copied
}

// stopServe SIGTERMs a serve process and requires a clean drain.
func stopServe(t *testing.T, srv *exec.Cmd, tail *strings.Builder, copied chan struct{}) {
	t.Helper()
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		<-copied // Wait closes the pipe; only call it after stderr hits EOF
		done <- srv.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\nstderr:\n%s", err, tail.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("s4e-serve did not exit after SIGTERM")
	}
	if !strings.Contains(tail.String(), "drained") {
		t.Errorf("drain log missing: %s", tail.String())
	}
}

// TestServeBinary drives the s4e-serve binary end to end: start on an
// ephemeral port with a journal directory, submit a job over HTTP, read
// its result, event stream, and metrics, SIGTERM the process and
// require a clean drain (exit 0) — then restart over the same state
// directory and require the finished job back, result included.
func TestServeBinary(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "s4e-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/s4e-serve").CombinedOutput(); err != nil {
		t.Fatalf("build s4e-serve: %v\n%s", err, out)
	}
	state := filepath.Join(dir, "state")

	srv, base, tail, copied := startServe(t, bin,
		"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "8", "-state", state)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Submit the same summation task the toolchain test runs; its guest
	// exit code (sum(1..16) = 136) proves real execution.
	body, err := json.Marshal(map[string]any{
		"type": "run", "source": taskSource, "budget": 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d id %q err %v", resp.StatusCode, st.ID, err)
	}

	var result struct {
		Status struct {
			State string `json:"state"`
			Error string `json:"error"`
		} `json:"status"`
		Result struct {
			Code uint32 `json:"code"`
		} `json:"result"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&result)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if result.Status.State != "done" || result.Result.Code != 136 {
		t.Fatalf("job state %q err %q code %d, want done/136",
			result.Status.State, result.Status.Error, result.Result.Code)
	}

	// SSE smoke: the finished job's event stream replays the lifecycle
	// and ends on the terminal event.
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(resp.Body) // handler closes the stream at terminal
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type %q", ct)
	}
	for _, want := range []string{"event: queued", "event: running", "event: done"} {
		if !strings.Contains(string(events), want) {
			t.Errorf("event stream missing %q:\n%s", want, events)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`s4e_serve_job_seconds_count{type="run"} 1`,
		"s4e_serve_queue_depth_peak 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Graceful drain: SIGTERM must exit 0 promptly.
	stopServe(t, srv, tail, copied)

	// Restart over the same state directory: the journal replays the
	// finished job — same ID, terminal status, result intact.
	srv2, base2, tail2, copied2 := startServe(t, bin,
		"-addr", "127.0.0.1:0", "-workers", "2", "-state", state)
	resp, err = http.Get(base2 + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	result.Status.State, result.Result.Code = "", 0
	err = json.NewDecoder(resp.Body).Decode(&result)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed result: status %d err %v", resp.StatusCode, err)
	}
	if result.Status.State != "done" || result.Result.Code != 136 {
		t.Fatalf("replayed job state %q code %d, want done/136",
			result.Status.State, result.Result.Code)
	}
	stopServe(t, srv2, tail2, copied2)
}
