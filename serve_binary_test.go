package repro

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeBinary drives the s4e-serve binary end to end: start on an
// ephemeral port, submit a job over HTTP, read its result and metrics,
// then SIGTERM the process and require a clean drain (exit 0).
func TestServeBinary(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "s4e-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/s4e-serve").CombinedOutput(); err != nil {
		t.Fatalf("build s4e-serve: %v\n%s", err, out)
	}

	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "8")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill() //nolint:errcheck // backstop; normally exited

	// The first stderr line carries the resolved listen address.
	rd := bufio.NewReader(stderr)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("reading banner: %v", err)
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("banner %q lacks address", line)
	}
	addr := strings.Fields(line[i+len(marker):])[0]
	base := "http://" + addr
	var tail strings.Builder
	copied := make(chan struct{})
	go func() {
		defer close(copied)
		io.Copy(&tail, rd) //nolint:errcheck // best-effort drain
	}()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Submit the same summation task the toolchain test runs; its guest
	// exit code (sum(1..16) = 136) proves real execution.
	body, err := json.Marshal(map[string]any{
		"type": "run", "source": taskSource, "budget": 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d id %q err %v", resp.StatusCode, st.ID, err)
	}

	var result struct {
		Status struct {
			State string `json:"state"`
			Error string `json:"error"`
		} `json:"status"`
		Result struct {
			Code uint32 `json:"code"`
		} `json:"result"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&result)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if result.Status.State != "done" || result.Result.Code != 136 {
		t.Fatalf("job state %q err %q code %d, want done/136",
			result.Status.State, result.Status.Error, result.Result.Code)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`s4e_serve_job_seconds_count{type="run"} 1`,
		"s4e_serve_queue_depth_peak 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Graceful drain: SIGTERM must exit 0 promptly.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		<-copied // Wait closes the pipe; only call it after stderr hits EOF
		done <- srv.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\nstderr:\n%s", err, tail.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("s4e-serve did not exit after SIGTERM")
	}
	if !strings.Contains(tail.String(), "drained") {
		t.Errorf("drain log missing: %s", tail.String())
	}
}
