// Package repro's root benchmarks regenerate every evaluation table and
// figure (EXPERIMENTS.md E2..E10) under `go test -bench`. Each benchmark
// reports the domain metric (guest cycles, MIPS, mutants/sec, coverage
// percent) alongside the usual ns/op so the tables can be read straight
// off the benchmark output.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/asm"
	"repro/internal/cover"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/plugin"
	"repro/internal/qta"
	"repro/internal/suites"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// benchWorkloads is the representative subset used where running all 15
// kernels per variant would dominate benchmark time.
var benchWorkloads = []string{"xtea", "crc32", "fir", "matmul", "sort", "pid"}

func getWorkload(b *testing.B, name string) workloads.Workload {
	b.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	return w
}

// BenchmarkE2_QTA regenerates the QTA three-way timing table: one run
// per iteration; static WCET, QTA time and dynamic cycles are reported
// as metrics.
func BenchmarkE2_QTA(b *testing.B) {
	prof := timing.EdgeSmall()
	for _, name := range benchWorkloads {
		w := getWorkload(b, name)
		b.Run(name, func(b *testing.B) {
			var res qta.Result
			for i := 0; i < b.N; i++ {
				r, err := flow.RunQTA(w, prof)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			if !res.Sound() {
				b.Fatalf("unsound: %+v", res)
			}
			b.ReportMetric(float64(res.StaticWCET), "static-cycles")
			b.ReportMetric(float64(res.QTATime), "qta-cycles")
			b.ReportMetric(float64(res.Dynamic), "dyn-cycles")
			b.ReportMetric(float64(res.StaticWCET)/float64(res.Dynamic), "static/dyn")
		})
	}
}

// BenchmarkE3_Overhead measures plain emulation vs. counting-plugin vs.
// QTA instrumentation cost on the same workload.
func BenchmarkE3_Overhead(b *testing.B) {
	prof := timing.EdgeSmall()
	w := getWorkload(b, "xtea")
	a, err := flow.Analyze(w.Source, prof, w.LoopBounds)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mk func() plugin.Plugin) {
		var insts uint64
		for i := 0; i < b.N; i++ {
			var plugins []plugin.Plugin
			if mk != nil {
				plugins = append(plugins, mk())
			}
			p, stop, err := flow.RunWith(w, prof, plugins...)
			if err != nil || stop.Reason != emu.StopExit {
				b.Fatalf("%v %v", stop, err)
			}
			insts = p.Machine.Hart.Instret
		}
		b.ReportMetric(float64(insts), "guest-insts")
	}
	b.Run("plain", func(b *testing.B) { run(b, nil) })
	b.Run("count-plugin", func(b *testing.B) {
		run(b, func() plugin.Plugin { return &plugin.Count{} })
	})
	b.Run("qta", func(b *testing.B) {
		run(b, func() plugin.Plugin { return qta.New(a.Annotated) })
	})
}

// BenchmarkE4_Coverage times the three suite families under the coverage
// collector and reports their coverage percentages.
func BenchmarkE4_Coverage(b *testing.B) {
	set := isa.RV32IMF
	fams := []struct {
		name  string
		suite suites.Suite
	}{
		{"architectural", suites.Architectural(set)},
		{"unit", suites.Unit(set)},
		{"torture", suites.Torture(set, 4, 1000)},
	}
	for _, f := range fams {
		b.Run(f.name, func(b *testing.B) {
			var rep cover.Report
			for i := 0; i < b.N; i++ {
				c, err := suites.Run(f.suite, set)
				if err != nil {
					b.Fatal(err)
				}
				rep = c.Report()
			}
			b.ReportMetric(cover.Pct(rep.OpsCovered, rep.OpsTotal), "insn-cov-%")
			b.ReportMetric(cover.Pct(rep.GPRCovered, 32), "gpr-cov-%")
		})
	}
}

// faultTarget builds the shared campaign target.
func faultTarget(b *testing.B, name string) (*fault.Target, *fault.Golden) {
	b.Helper()
	w := getWorkload(b, name)
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		b.Fatal(err)
	}
	tg := &fault.Target{Program: prog, Budget: w.Budget, Sensor: w.Sensor}
	g, err := fault.RunGolden(tg)
	if err != nil {
		b.Fatal(err)
	}
	return tg, g
}

// BenchmarkE5_Fault regenerates the outcome classification per fault
// model and reports the masked/SDC fractions.
func BenchmarkE5_Fault(b *testing.B) {
	tg, g := faultTarget(b, "crc32")
	end := vp.RAMBase + uint32(len(tg.Program.Bytes))
	models := []struct {
		name string
		cfg  fault.PlanConfig
	}{
		{"gpr-transient", fault.PlanConfig{Seed: 9, GPRTransient: 100, GoldenInsts: g.Insts}},
		{"mem-permanent", fault.PlanConfig{Seed: 9, MemPermanent: 100,
			DataStart: vp.RAMBase, DataEnd: end}},
		{"code-bitflip", fault.PlanConfig{Seed: 9, CodeBitflip: 100,
			CodeStart: vp.RAMBase, CodeEnd: end}},
	}
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			var res *fault.Results
			for i := 0; i < b.N; i++ {
				r, err := fault.Campaign(tg, fault.NewPlan(m.cfg), runtime.NumCPU())
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(100*float64(res.ByOutcome[fault.Masked])/float64(res.Total), "masked-%")
			b.ReportMetric(100*float64(res.ByOutcome[fault.SDC])/float64(res.Total), "sdc-%")
			b.ReportMetric(100*float64(res.ByOutcome[fault.Trapped])/float64(res.Total), "trapped-%")
		})
	}
}

// BenchmarkE6_Campaign measures campaign throughput against worker count
// (mutants per second).
func BenchmarkE6_Campaign(b *testing.B) {
	tg, g := faultTarget(b, "pid")
	plan := fault.NewPlan(fault.PlanConfig{Seed: 4, GPRTransient: 200, GoldenInsts: g.Insts})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fault.Campaign(tg, plan, workers); err != nil {
					b.Fatal(err)
				}
			}
			mutantsPerOp := float64(len(plan.Faults))
			b.ReportMetric(mutantsPerOp*float64(b.N)/b.Elapsed().Seconds(), "mutants/sec")
		})
	}
}

// BenchmarkE7_BMI regenerates the bit-manipulation speedup table: guest
// cycles for the base and Xbmi variant of each kernel pair.
func BenchmarkE7_BMI(b *testing.B) {
	prof := timing.EdgeSmall()
	for _, pair := range workloads.Pairs() {
		base, bmi := pair[0], pair[1]
		var cb, cx uint64
		b.Run(base.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, stop, err := flow.RunWith(base, prof)
				if err != nil || stop.Reason != emu.StopExit {
					b.Fatalf("%v %v", stop, err)
				}
				cb = p.Machine.Hart.Cycle
			}
			b.ReportMetric(float64(cb), "guest-cycles")
		})
		b.Run(bmi.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, stop, err := flow.RunWith(bmi, prof)
				if err != nil || stop.Reason != emu.StopExit {
					b.Fatalf("%v %v", stop, err)
				}
				cx = p.Machine.Hart.Cycle
			}
			b.ReportMetric(float64(cx), "guest-cycles")
			if cb > 0 {
				b.ReportMetric(float64(cb)/float64(cx), "speedup-x")
			}
		})
	}
}

// BenchmarkE8_MIPS measures raw emulation speed across the engine axis:
// the superblock trace engine, the threaded-code engine, the
// interpreter-switch engine, and the switch engine with the
// translation-block cache disabled (the retranslate-everything
// baseline). One platform is built per sub-benchmark and rewound
// between iterations with the watermark-based RestoreReuse, so the
// timed loop holds emulation only — not assembly or RAM allocation.
func BenchmarkE8_MIPS(b *testing.B) {
	for _, mode := range []struct {
		name    string
		engine  emu.Engine
		disable bool
	}{
		{"superblock", emu.EngineSuperblock, false},
		{"threaded", emu.EngineThreaded, false},
		{"switch", emu.EngineSwitch, false},
		{"no-tb-cache", emu.EngineSwitch, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for _, name := range benchWorkloads {
				w := getWorkload(b, name)
				b.Run(name, func(b *testing.B) {
					prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
					if err != nil {
						b.Fatal(err)
					}
					p, err := vp.New(vp.Config{Sensor: w.Sensor})
					if err != nil {
						b.Fatal(err)
					}
					p.Machine.Engine = mode.engine
					p.Machine.DisableTBCache = mode.disable
					if err := p.LoadProgram(prog); err != nil {
						b.Fatal(err)
					}
					base := p.Snapshot()
					var insts uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						p.RestoreReuse(base, prog)
						stop := p.Run(w.Budget)
						if stop.Reason != emu.StopExit {
							b.Fatalf("%v", stop)
						}
						insts = p.Machine.Hart.Instret
					}
					b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MIPS")
				})
			}
		})
	}
}

// BenchmarkE12_RestoreScatter measures the differential-restore win on a
// scattered-store workload: one word near the bottom of RAM and one near
// the top, so the watermark box spans almost all of RAM while only two
// pages are dirty. The pages arm rewinds via the dirty-page bitmap, the
// watermark arm (DisableDirtyPages) re-copies the whole box; both report
// the bytes actually copied per restore.
func BenchmarkE12_RestoreScatter(b *testing.B) {
	const scatterSrc = `
	la t0, buf
	li a1, 0x1234
	sw a1, 0(t0)
	sw a1, -16(sp)
	ebreak
buf:
	.word 0
`
	for _, mode := range []struct {
		name         string
		disablePages bool
	}{
		{"pages", false},
		{"watermark", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p, err := vp.New(vp.Config{})
			if err != nil {
				b.Fatal(err)
			}
			p.Machine.DisableDirtyPages = mode.disablePages
			prog, err := p.LoadSource(vp.Prelude + scatterSrc)
			if err != nil {
				b.Fatal(err)
			}
			base := p.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
					b.Fatalf("%+v", stop)
				}
				p.RestoreReuse(base, prog)
			}
			b.StopTimer()
			st := p.RestoreStats()
			if st.Restores > 0 {
				b.ReportMetric(float64(st.RestoreBytes)/float64(st.Restores), "restore-B/op")
				b.ReportMetric(float64(st.RestorePages)/float64(st.Restores), "restore-pages/op")
			}
		})
	}
}

// BenchmarkE10_PoolCampaign measures campaign throughput with and
// without the shared translation pool at several worker counts, and
// reports the compiled-block count per campaign — the work the pool
// eliminates. One op is one full campaign over a mixed plan.
func BenchmarkE10_PoolCampaign(b *testing.B) {
	tg, g := faultTarget(b, "crc32")
	end := vp.RAMBase + uint32(len(tg.Program.Bytes))
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         10,
		GPRTransient: 100,
		MemPermanent: 50,
		CodeBitflip:  100,
		GoldenInsts:  g.Insts,
		CodeStart:    vp.RAMBase,
		CodeEnd:      end,
		DataStart:    vp.RAMBase,
		DataEnd:      end,
	})
	for _, eng := range []struct {
		name   string
		engine emu.Engine
	}{
		{"threaded", emu.EngineThreaded},
		{"superblock", emu.EngineSuperblock},
	} {
		etg := *tg
		etg.Engine = eng.engine
		for _, mode := range []struct {
			name   string
			noPool bool
		}{
			{"shared-pool", false},
			{"private-caches", true},
		} {
			for _, workers := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/workers-%d", eng.name, mode.name, workers), func(b *testing.B) {
					var tbs uint64
					for i := 0; i < b.N; i++ {
						reg := obs.NewRegistry()
						res, err := fault.CampaignOpt(&etg, plan, fault.Options{
							Workers: workers, NoSharedPool: mode.noPool, Metrics: reg,
						})
						if err != nil {
							b.Fatal(err)
						}
						if res.Total != len(plan.Faults) {
							b.Fatalf("short campaign: %d/%d", res.Total, len(plan.Faults))
						}
						tbs = reg.Counter(vp.MetricTBsCompiled, "").Value()
					}
					b.ReportMetric(float64(len(plan.Faults))*float64(b.N)/b.Elapsed().Seconds(), "mutants/sec")
					b.ReportMetric(float64(tbs), "tbs-compiled")
				})
			}
		}
	}
}

// BenchmarkE13_IRT regenerates the interrupt-response-time table
// (EXPERIMENTS.md E13): per interrupt demonstrator, the static IRT
// bound against the worst service latency an adversarially timed
// interrupt campaign observes, plus the pessimism ratio. The benchmark
// fails if the bound is ever undercut, so a timing-model regression
// shows up as a broken bench run, not just a changed number.
func BenchmarkE13_IRT(b *testing.B) {
	prof := timing.EdgeSmall()
	for _, w := range workloads.Interrupt() {
		b.Run(w.Name, func(b *testing.B) {
			var res *flow.IRTResult
			for i := 0; i < b.N; i++ {
				r, err := flow.RunIRT(context.Background(), w, prof, flow.IRTConfig{
					Engine: emu.EngineSuperblock, Samples: 24, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			if !res.Sound {
				b.Fatalf("unsound: bound %d < observed %d", res.Static.Bound, res.Measured.MaxLatency)
			}
			b.ReportMetric(float64(res.Static.Bound), "bound-cycles")
			b.ReportMetric(float64(res.Measured.MaxLatency), "observed-cycles")
			b.ReportMetric(res.Ratio, "ratio")
			b.ReportMetric(float64(res.Measured.Delivered), "delivered")
		})
	}
}
