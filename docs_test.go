package repro

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs enforces the documentation contract: every package
// under internal/ and cmd/ must carry a godoc package comment. CI runs
// this check, so an undocumented new package fails the build instead of
// silently shipping.
func TestPackageDocs(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string
	for _, root := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			dir := filepath.Join(root, e.Name())
			documented, hasGo, err := packageDocumented(fset, dir)
			if err != nil {
				t.Errorf("%s: %v", dir, err)
				continue
			}
			if hasGo && !documented {
				missing = append(missing, dir)
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("packages without a godoc package comment:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

// packageDocumented reports whether any non-test Go file in dir carries
// a package doc comment.
func packageDocumented(fset *token.FileSet, dir string) (documented, hasGo bool, err error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	for _, f := range files {
		name := f.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, true, err
		}
		if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}
