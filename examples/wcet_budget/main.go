// WCET budgeting demonstrator: an edge device runs a periodic PID
// control step and a FIR filter stage and must prove both fit their
// cycle budgets. The example drives the full QTA flow — static WCET
// analysis of the binary, then co-simulation against the WCET-annotated
// CFG — and checks each task's bound against its deadline, the
// paper's motivating use of timing-annotated emulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/timing"
	"repro/internal/workloads"
)

func main() {
	prof := timing.EdgeSmall()
	tasks := []struct {
		name     string
		deadline uint64 // cycle budget per activation
	}{
		{"pid", 3_000},
		{"fir", 40_000},
	}

	fmt.Printf("WCET budgeting on the %s core model\n\n", prof.Name())
	fmt.Printf("%-8s %10s %10s %10s %10s  %s\n",
		"task", "deadline", "static", "qta", "dynamic", "verdict")

	for _, task := range tasks {
		w, ok := workloads.ByName(task.name)
		if !ok {
			log.Fatalf("workload %s missing", task.name)
		}
		// Static analysis + annotated co-simulation in one call.
		res, err := flow.RunQTA(w, prof)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "OK: fits budget"
		if res.StaticWCET > task.deadline {
			verdict = "VIOLATION: bound exceeds deadline"
		}
		fmt.Printf("%-8s %10d %10d %10d %10d  %s\n",
			task.name, task.deadline, res.StaticWCET, res.QTATime, res.Dynamic, verdict)
		if !res.Sound() {
			log.Fatalf("%s: soundness violated (static %d, qta %d, dynamic %d)",
				task.name, res.StaticWCET, res.QTATime, res.Dynamic)
		}
	}

	fmt.Println("\nThe three columns tighten left to right: the static bound covers")
	fmt.Println("every path; QTA covers the observed path with worst-case block")
	fmt.Println("costs; dynamic is the cycle-accurate pipeline simulation.")
}
