// Quickstart: assemble a bare-metal RISC-V program with the built-in
// assembler, run it on the edge virtual platform, and read its UART
// output and performance counters — the minimal end-to-end tour of the
// ecosystem's public surface.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/timing"
	"repro/internal/vp"
)

const hello = `
_start:
	la   a0, msg
	li   a1, UART_TX
1:	lbu  a2, 0(a0)          # next byte of the message
	beqz a2, 2f
	sw   a2, 0(a1)          # transmit
	addi a0, a0, 1
	j    1b
2:	li   a0, 0              # exit code
	li   t6, SYSCON_EXIT
	sw   a0, 0(t6)
3:	j    3b

msg:	.asciz "hello from the Scale4Edge VP!\n"
`

func main() {
	// Build the platform: one RV32 hart, RAM, UART, CLINT, syscon, with
	// the small edge core's timing model.
	p, err := vp.New(vp.Config{
		Profile:    timing.EdgeSmall(),
		ConsoleOut: os.Stdout, // UART bytes stream here as they are written
	})
	if err != nil {
		log.Fatal(err)
	}

	// Assemble and load. vp.Prelude defines the device addresses
	// (UART_TX, SYSCON_EXIT, ...) used by the source.
	if _, err := p.LoadSource(vp.Prelude + hello); err != nil {
		log.Fatal(err)
	}

	// Run to completion (the program exits through the syscon device).
	stop := p.Run(1_000_000)

	h := &p.Machine.Hart
	fmt.Printf("\nstop:         %v\n", stop)
	fmt.Printf("instructions: %d\n", h.Instret)
	fmt.Printf("cycles:       %d (%s core model)\n", h.Cycle, timing.EdgeSmall().Name())
	fmt.Printf("CPI:          %.2f\n", float64(h.Cycle)/float64(h.Instret))
}
