// Torture-WCET demonstrator: generate random test programs, bound them
// with the static analyzer using ONLY automatic loop-bound inference
// (no annotations), execute them, and check the bound held — random
// differential validation of the whole timing flow, the kind of
// cross-component stress a tool ecosystem earns its keep with.
package main

import (
	"fmt"
	"log"

	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/isa"
	"repro/internal/timing"
	"repro/internal/torture"
	"repro/internal/vp"
)

func main() {
	prof := timing.EdgeSmall()
	const runs = 20

	fmt.Printf("%-6s %10s %10s %8s %8s  %s\n",
		"seed", "wcet", "dynamic", "ratio", "loops", "verdict")

	worst := 0.0
	for seed := int64(0); seed < runs; seed++ {
		prog := torture.Generate(torture.Config{Seed: seed, Insts: 250, ISA: isa.RV32IM})

		// Static analysis with inference only: the generator's counted
		// loops follow the li/addi/bnez idiom the analyzer recognizes.
		a, err := flow.AnalyzeOpt(prog.Source, prof, nil, true)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}

		p, err := vp.New(vp.Config{Profile: prof})
		if err != nil {
			log.Fatal(err)
		}
		if err := p.LoadProgram(a.Program); err != nil {
			log.Fatal(err)
		}
		stop := p.Run(prog.Budget)
		if stop.Reason != emu.StopExit {
			log.Fatalf("seed %d: %v", seed, stop)
		}

		dyn := p.Machine.Hart.Cycle
		ratio := float64(a.Annotated.WCET) / float64(dyn)
		verdict := "OK"
		if a.Annotated.WCET < dyn {
			verdict = "UNSOUND"
		}
		if ratio > worst {
			worst = ratio
		}
		fmt.Printf("%-6d %10d %10d %8.2f %8d  %s\n",
			seed, a.Annotated.WCET, dyn, ratio, len(a.Annotated.Bounds), verdict)
		if verdict != "OK" {
			log.Fatal("soundness violation — this must never print")
		}
	}
	fmt.Printf("\n%d random programs bounded with zero annotations; worst pessimism %.2fx\n",
		runs, worst)
}
