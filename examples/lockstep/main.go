// Lockstep demonstrator: the classic automotive safety mechanism — two
// identical cores execute the same program step for step and a checker
// compares their architectural state after every instruction. A fault
// injected into one core is detected the moment the states diverge,
// bounding the fault-detection latency to one instruction. This is the
// safety pattern (AURIX-style lockstep) the ecosystem's fault analysis
// exists to validate.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// divergence compares the two harts and returns a description of the
// first mismatch, if any.
func divergence(a, b *vp.Platform) (string, bool) {
	ha, hb := &a.Machine.Hart, &b.Machine.Hart
	if ha.PC != hb.PC {
		return fmt.Sprintf("PC 0x%08x vs 0x%08x", ha.PC, hb.PC), true
	}
	for r := 1; r < isa.NumRegs; r++ {
		if ha.X[r] != hb.X[r] {
			return fmt.Sprintf("%s 0x%08x vs 0x%08x", isa.Reg(r), ha.X[r], hb.X[r]), true
		}
	}
	return "", false
}

func main() {
	w, ok := workloads.ByName("pid")
	if !ok {
		log.Fatal("pid workload missing")
	}
	build := func() *vp.Platform {
		p, err := vp.New(vp.Config{Sensor: w.Sensor})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
			log.Fatal(err)
		}
		return p
	}
	main0, main1 := build(), build()

	// Inject a single-event upset into core 1 only: flip bit 7 of the
	// PID integral accumulator after 300 instructions.
	const faultAt, faultReg, faultBit = 300, isa.S0, 7

	fmt.Println("lockstep pair running the PID control loop")
	fmt.Printf("fault plan: flip %s bit %d in core-1 after %d instructions\n\n",
		faultReg, faultBit, faultAt)

	var step uint64
	for {
		s0 := main0.Machine.Step()
		s1 := main1.Machine.Step()
		step++
		if step == faultAt {
			main1.Machine.Hart.X[faultReg] ^= 1 << faultBit
		}
		if why, diverged := divergence(main0, main1); diverged {
			fmt.Printf("LOCKSTEP MISMATCH at instruction %d: %s\n", step, why)
			fmt.Printf("detection latency: %d instructions after injection\n", step-faultAt)
			fmt.Println("\nthe checker halts the pair here; a real ECU would now fail")
			fmt.Println("over to the safe state — the SDC a single core would have")
			fmt.Println("silently shipped is caught in bounded time.")
			return
		}
		if s0 != nil || s1 != nil {
			fmt.Printf("both cores finished identically after %d instructions (%v)\n", step, *s0)
			log.Fatal("fault was fully masked before any state comparison diverged")
		}
		if step > w.Budget {
			log.Fatal("budget exceeded without divergence")
		}
	}
}
