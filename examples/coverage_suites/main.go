// Coverage-study demonstrator: score the three test-suite families
// (architectural, unit, torture) against the RV32IMF configuration with
// the instruction/register coverage metric, then merge them — showing
// that the suites' gaps are complementary and only the union approaches
// full coverage.
package main

import (
	"fmt"
	"log"

	"repro/internal/cover"
	"repro/internal/exp"
	"repro/internal/isa"
	"repro/internal/suites"
)

func main() {
	set := isa.RV32IMF
	_, table, err := exp.E4Coverage(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)

	// Dig into the gaps of a single suite: which instruction types does
	// the torture generator never emit?
	tor, err := suites.Run(suites.Torture(set, 8, 1000), set)
	if err != nil {
		log.Fatal(err)
	}
	r := tor.Report()
	fmt.Printf("\ntorture suite gaps (%d/%d insn types):\n  %v\n",
		r.OpsCovered, r.OpsTotal, r.MissingOps)
	fmt.Printf("torture GPR coverage: %.1f%% — wide, because register\n",
		cover.Pct(r.GPRCovered, 32))
	fmt.Println("allocation is random; the architectural suite shows the inverse profile.")
}
