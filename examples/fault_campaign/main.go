// Fault-effect demonstrator: qualify the PID sensor-control loop against
// random bit-flip faults, the ISO 26262-style robustness argument the
// ecosystem's fault analysis produces. A golden run fixes the expected
// behaviour; hundreds of mutants (register upsets, stuck memory cells,
// corrupted instruction words) are then simulated in parallel and each
// outcome is classified.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/vp"
	"repro/internal/workloads"
)

func main() {
	w, ok := workloads.ByName("pid")
	if !ok {
		log.Fatal("pid workload missing")
	}
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		log.Fatal(err)
	}
	target := &fault.Target{Program: prog, Budget: w.Budget, Sensor: w.Sensor}

	golden, err := fault.RunGolden(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %v after %d instructions\n\n", golden.Stop, golden.Insts)

	end := vp.RAMBase + uint32(len(prog.Bytes))
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         2024,
		GPRTransient: 300,
		MemPermanent: 100,
		CodeBitflip:  200,
		GoldenInsts:  golden.Insts,
		CodeStart:    vp.RAMBase,
		CodeEnd:      end,
		DataStart:    vp.RAMBase,
		DataEnd:      end,
	})

	workers := runtime.NumCPU()
	start := time.Now()
	res, err := fault.Campaign(target, plan, workers)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Print(res)
	fmt.Printf("\n%d mutants in %v (%.0f mutants/sec on %d workers)\n",
		res.Total, elapsed.Round(time.Millisecond),
		float64(res.Total)/elapsed.Seconds(), workers)

	sdc := res.ByOutcome[fault.SDC]
	fmt.Printf("\nsilent data corruptions: %d/%d (%.1f%%) — these are the cases\n",
		sdc, res.Total, 100*float64(sdc)/float64(res.Total))
	fmt.Println("a safety mechanism (e.g. redundant computation) must cover.")
}
